"""Injectable IO fault policies for the object store.

A :class:`FaultPolicy` hooks every byte-level write and read the
:class:`~repro.storage.store.ObjectStore` performs.  The base policy
only counts operations (used to enumerate crash points); subclasses
inject the failure modes a production checkpointing system must
survive:

* :class:`CrashAtWrite` — the process dies at a chosen write boundary,
  optionally leaving a torn partial file (the bytes that reached disk
  before death).  Because the store writes through a temp file and an
  atomic rename, torn bytes only ever land in ``*.tmp`` files that no
  reader consults — that invariant is what the crash-matrix tests pin.
* :class:`TransientFaults` — the first N operations raise
  :class:`TransientIOError`; the store's :class:`RetryPolicy` absorbs
  them with exponential backoff (charged to simulated device time).
* :class:`LatencySpikes` — periodic slow requests add simulated
  seconds to the store's NVMe accounting, modelling a shared device
  under interference (pair with :meth:`NVMeModel.degraded`).

Policies are plugged in at construction time::

    store = ObjectStore(path, faults=CrashAtWrite(3, torn=True))
    save_distributed_checkpoint(engine, path, store=store)  # raises InjectedCrash
"""

from __future__ import annotations

import dataclasses
import pathlib
import random as _random
from typing import Callable, List, Optional, Sequence, Tuple


class InjectedCrash(RuntimeError):
    """Simulated process death at an IO boundary.

    Raised by fault policies to model a rank dying mid-checkpoint; the
    store makes no attempt to catch it, exactly like a real SIGKILL.
    """


class RankKilled(InjectedCrash):
    """Specific ranks died (SIGKILL) rather than the whole job.

    Unlike a plain :class:`InjectedCrash` — which models the job
    vanishing — a rank kill leaves survivors that a supervisor can
    regroup onto a smaller topology.  Carries the dead ranks so the
    recovery path knows how much capacity remains.
    """

    def __init__(self, ranks: Sequence[int], where: str) -> None:
        super().__init__(
            f"rank(s) {sorted(ranks)} killed {where}"
        )
        self.ranks: Tuple[int, ...] = tuple(sorted(ranks))


class TransientIOError(OSError):
    """An injected transient IO failure (EIO-style); safe to retry."""


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How the store retries :class:`TransientIOError`.

    Attributes:
        max_attempts: total tries per operation (>= 1; 1 disables retry).
        backoff_s: simulated delay before the first retry.
        multiplier: exponential backoff factor between retries.
    """

    max_attempts: int = 3
    backoff_s: float = 0.002
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.multiplier < 1.0:
            raise ValueError("backoff_s must be >= 0 and multiplier >= 1")

    def delay_s(self, attempt: int) -> float:
        """Simulated backoff before retry number ``attempt`` (1-based)."""
        return self.backoff_s * self.multiplier ** (attempt - 1)


class FaultPolicy:
    """Base policy: observes every IO boundary, injects nothing.

    ``write_ops`` / ``read_ops`` count *attempts* (a retried operation
    counts each try), which is how tests enumerate the write boundaries
    of a save or conversion before replaying it with crashes.
    """

    def __init__(self) -> None:
        self.write_ops = 0
        self.read_ops = 0

    # --- hooks called by ObjectStore ---

    def on_write(self, rel_path: str, tmp_path: pathlib.Path, data: bytes) -> None:
        """Called before bytes are written (to ``tmp_path``, then renamed)."""
        self.write_ops += 1
        self._write_fault(self.write_ops, rel_path, tmp_path, data)

    def on_read(self, rel_path: str, path: pathlib.Path) -> None:
        """Called before bytes are read from ``path``."""
        self.read_ops += 1
        self._read_fault(self.read_ops, rel_path, path)

    def write_latency_s(self, rel_path: str, nbytes: int) -> float:
        """Extra simulated seconds to charge this write."""
        return 0.0

    def read_latency_s(self, rel_path: str, nbytes: int) -> float:
        """Extra simulated seconds to charge this read."""
        return 0.0

    # --- subclass extension points ---

    def _write_fault(
        self, op_index: int, rel_path: str, tmp_path: pathlib.Path, data: bytes
    ) -> None:
        pass

    def _read_fault(
        self, op_index: int, rel_path: str, path: pathlib.Path
    ) -> None:
        pass


class CrashAtWrite(FaultPolicy):
    """Die at the Nth write boundary (0-based across the store's life).

    Args:
        crash_at: index of the fatal write.
        torn: when True, half of the payload is flushed to the temp
            file before death — the bytes a kernel may have written out
            before the process was killed.  The final path is never
            touched: POSIX ``rename`` is atomic, so a commit either
            fully happens or not at all.
    """

    def __init__(self, crash_at: int, torn: bool = False) -> None:
        super().__init__()
        if crash_at < 0:
            raise ValueError("crash_at must be >= 0")
        self.crash_at = crash_at
        self.torn = torn
        self.crashed = False

    def _write_fault(
        self, op_index: int, rel_path: str, tmp_path: pathlib.Path, data: bytes
    ) -> None:
        if op_index - 1 != self.crash_at:
            return
        self.crashed = True
        if self.torn and data:
            tmp_path.write_bytes(data[: max(1, len(data) // 2)])
        raise InjectedCrash(
            f"injected crash at write boundary {self.crash_at} ({rel_path})"
        )


class TransientFaults(FaultPolicy):
    """The first N write / read attempts fail with :class:`TransientIOError`.

    Each retry consumes one failure, so an operation succeeds once the
    budget is exhausted — the canonical flaky-device profile for
    exercising the store's retry/backoff path.
    """

    def __init__(self, write_failures: int = 0, read_failures: int = 0) -> None:
        super().__init__()
        if write_failures < 0 or read_failures < 0:
            raise ValueError("failure counts must be >= 0")
        self.write_failures = write_failures
        self.read_failures = read_failures

    def _write_fault(
        self, op_index: int, rel_path: str, tmp_path: pathlib.Path, data: bytes
    ) -> None:
        if self.write_failures > 0:
            self.write_failures -= 1
            raise TransientIOError(f"injected transient write fault ({rel_path})")

    def _read_fault(
        self, op_index: int, rel_path: str, path: pathlib.Path
    ) -> None:
        if self.read_failures > 0:
            self.read_failures -= 1
            raise TransientIOError(f"injected transient read fault ({rel_path})")


class LatencySpikes(FaultPolicy):
    """Every ``every``-th operation takes ``spike_s`` extra simulated time.

    Models interference on a shared NVMe device; the spikes land in the
    store's ``simulated_write_s`` / ``simulated_read_s`` so cost-model
    benchmarks can study tail behaviour without real slow hardware.
    """

    def __init__(self, spike_s: float, every: int = 2) -> None:
        super().__init__()
        if spike_s < 0 or every < 1:
            raise ValueError("spike_s must be >= 0 and every >= 1")
        self.spike_s = spike_s
        self.every = every
        self.spikes = 0

    def write_latency_s(self, rel_path: str, nbytes: int) -> float:
        if self.write_ops % self.every == 0:
            self.spikes += 1
            return self.spike_s
        return 0.0

    def read_latency_s(self, rel_path: str, nbytes: int) -> float:
        if self.read_ops % self.every == 0:
            self.spikes += 1
            return self.spike_s
        return 0.0


class RankKillAtWrite(FaultPolicy):
    """Kill specific ranks at a write boundary inside a save/conversion.

    The trigger is either positional (``at`` — the Nth write the store
    performs, 0-based, like :class:`CrashAtWrite`) or content-based
    (``match`` — the first write whose relative path contains the
    substring).  Content matching is how a supervisor aims a kill at a
    semantic point of the commit protocol: ``match=MANIFEST_FILE``
    dies immediately *before* the tag commits, ``match=LATEST_FILE``
    dies after the manifest committed but before the ``latest`` pointer
    advanced.

    Args:
        ranks: which ranks die (reported via :class:`RankKilled`).
        at: 0-based write boundary to die at; mutually exclusive with
            ``match``.
        match: substring of the relative path to die on.
        torn: leave half the payload in the temp file, as
            :class:`CrashAtWrite` does.
        on_kill: optional callback invoked with the dead ranks just
            before the exception is raised — the hook the supervisor
            uses to mark cluster ranks failed without this module ever
            importing :mod:`repro.dist`.

    The policy fires at most once; after the kill it becomes a passive
    counter so a store can be probed post-mortem.
    """

    def __init__(
        self,
        ranks: Sequence[int],
        at: Optional[int] = None,
        match: Optional[str] = None,
        torn: bool = False,
        on_kill: Optional[Callable[[Tuple[int, ...]], None]] = None,
    ) -> None:
        super().__init__()
        if (at is None) == (match is None):
            raise ValueError("exactly one of 'at' and 'match' is required")
        if at is not None and at < 0:
            raise ValueError("at must be >= 0")
        if not ranks:
            raise ValueError("at least one rank must die")
        self.ranks = tuple(sorted(ranks))
        self.at = at
        self.match = match
        self.torn = torn
        self.on_kill = on_kill
        self.killed = False

    def _write_fault(
        self, op_index: int, rel_path: str, tmp_path: pathlib.Path, data: bytes
    ) -> None:
        if self.killed:
            return
        if self.at is not None:
            if op_index - 1 != self.at:
                return
        elif self.match not in rel_path:
            return
        self.killed = True
        if self.torn and data:
            tmp_path.write_bytes(data[: max(1, len(data) // 2)])
        if self.on_kill is not None:
            self.on_kill(self.ranks)
        raise RankKilled(self.ranks, f"at write of {rel_path}")


# Lifecycle phases a kill can target.  ``step`` kills strike between
# IO, detected by the engine's next health check; the ``save_*`` pair
# brackets the commit point of the save protocol (manifest write);
# ``convert`` strikes during a recovery's own resharding conversion.
PHASE_STEP = "step"
PHASE_SAVE_PRE_COMMIT = "save_pre_commit"
PHASE_SAVE_POST_COMMIT = "save_post_commit"
PHASE_CONVERT = "convert"

KILL_PHASES = (
    PHASE_STEP,
    PHASE_SAVE_PRE_COMMIT,
    PHASE_SAVE_POST_COMMIT,
    PHASE_CONVERT,
)

# CLI spellings (repro supervise --kill STEP:PHASE:RANKS) -> phase.
_PHASE_ALIASES = {
    "step": PHASE_STEP,
    "save-pre": PHASE_SAVE_PRE_COMMIT,
    "save_pre_commit": PHASE_SAVE_PRE_COMMIT,
    "save-post": PHASE_SAVE_POST_COMMIT,
    "save_post_commit": PHASE_SAVE_POST_COMMIT,
    "convert": PHASE_CONVERT,
}


@dataclasses.dataclass(frozen=True)
class KillEvent:
    """One scheduled failure: *who* dies, *when*, and at which phase.

    Attributes:
        step: the training step the event is armed at.  ``step`` kills
            strike before that step executes; ``save_*`` kills strike
            inside the save issued at that step; ``convert`` kills
            strike during the first conversion triggered at or after
            that step.
        phase: one of :data:`KILL_PHASES`.
        ranks: the ranks that die.
        at_write: for ``convert`` events, the 0-based write boundary
            of the conversion to die at (default 1: after the source
            marker, mid-atom-stream).
        torn: leave a torn temp file behind (save/convert phases).
    """

    step: int
    phase: str
    ranks: Tuple[int, ...]
    at_write: int = 1
    torn: bool = False

    def __post_init__(self) -> None:
        if self.phase not in KILL_PHASES:
            raise ValueError(
                f"unknown kill phase {self.phase!r}; expected one of "
                f"{', '.join(KILL_PHASES)}"
            )
        if self.step < 0:
            raise ValueError("step must be >= 0")
        if not self.ranks:
            raise ValueError("at least one rank must die")

    @classmethod
    def from_spec(cls, spec: str) -> "KillEvent":
        """Parse the CLI form ``STEP:PHASE:RANKS[:AT_WRITE]``.

        ``RANKS`` is comma-separated; ``PHASE`` accepts the CLI
        spellings ``step``, ``save-pre``, ``save-post``, ``convert``.
        Example: ``6:save-pre:3`` or ``9:convert:0,1:2``.
        """
        parts = spec.split(":")
        if len(parts) not in (3, 4):
            raise ValueError(
                f"bad kill spec {spec!r}: expected STEP:PHASE:RANKS[:AT_WRITE]"
            )
        phase = _PHASE_ALIASES.get(parts[1].strip().lower())
        if phase is None:
            raise ValueError(
                f"bad kill spec {spec!r}: unknown phase {parts[1]!r} "
                f"(use step, save-pre, save-post, or convert)"
            )
        try:
            step = int(parts[0])
            ranks = tuple(sorted(int(r) for r in parts[2].split(",")))
            at_write = int(parts[3]) if len(parts) == 4 else 1
        except ValueError:
            raise ValueError(
                f"bad kill spec {spec!r}: step, ranks, and at_write "
                f"must be integers"
            ) from None
        return cls(step=step, phase=phase, ranks=ranks, at_write=at_write)

    def describe(self) -> str:
        """The canonical spec string this event round-trips through."""
        alias = {v: k for k, v in _PHASE_ALIASES.items() if "-" in k or v == k}
        base = (
            f"{self.step}:{alias.get(self.phase, self.phase)}:"
            + ",".join(str(r) for r in self.ranks)
        )
        if self.phase == PHASE_CONVERT and self.at_write != 1:
            base += f":{self.at_write}"
        return base


class KillSchedule:
    """An ordered set of :class:`KillEvent` consumed once each.

    A supervisor polls the schedule by phase: step kills before each
    training step, save kills when issuing a save, and convert kills
    when launching a recovery conversion.  Events are consumed exactly
    once, so a replayed step (after a resume rewound the iteration
    counter) does not re-fire a kill that already happened.
    """

    def __init__(self, events: Sequence[KillEvent] = ()) -> None:
        self.events: List[KillEvent] = sorted(
            events, key=lambda e: (e.step, KILL_PHASES.index(e.phase), e.ranks)
        )
        self._consumed = [False] * len(self.events)

    @classmethod
    def from_specs(cls, specs: Sequence[str]) -> "KillSchedule":
        """Build a schedule from CLI ``STEP:PHASE:RANKS`` strings."""
        return cls([KillEvent.from_spec(s) for s in specs])

    @classmethod
    def random(
        cls,
        seed: int,
        world_size: int,
        horizon: int,
        save_every: int,
        failures: int = 1,
        phases: Sequence[str] = KILL_PHASES,
    ) -> "KillSchedule":
        """A deterministic randomized schedule for chaos sweeps.

        Uses :class:`random.Random` seeded with ``seed`` only — two
        calls with equal arguments yield equal schedules regardless of
        process or hash seed.  Single-rank kills at distinct steps;
        save-phase kills are aligned to save steps so they actually
        strike a save.
        """
        if failures < 1 or world_size < 2:
            raise ValueError("need failures >= 1 and world_size >= 2")
        rng = _random.Random(seed)
        events = []
        used_steps: set = set()
        save_steps = [s for s in range(save_every, horizon, save_every)]
        for _ in range(failures):
            phase = rng.choice(list(phases))
            if phase in (PHASE_SAVE_PRE_COMMIT, PHASE_SAVE_POST_COMMIT):
                candidates = [s for s in save_steps if s not in used_steps]
                if not candidates:
                    phase = PHASE_STEP
            if phase in (PHASE_SAVE_PRE_COMMIT, PHASE_SAVE_POST_COMMIT):
                step = rng.choice(candidates)
            else:
                candidates = [
                    s for s in range(1, horizon) if s not in used_steps
                ]
                if not candidates:
                    break
                step = rng.choice(candidates)
            used_steps.add(step)
            rank = rng.randrange(world_size)
            events.append(
                KillEvent(step=step, phase=phase, ranks=(rank,))
            )
        return cls(events)

    def __len__(self) -> int:
        return len(self.events)

    def pending(self) -> List[KillEvent]:
        """Events not yet consumed, in schedule order."""
        return [
            e for e, done in zip(self.events, self._consumed) if not done
        ]

    def _take(self, index: int) -> KillEvent:
        self._consumed[index] = True
        return self.events[index]

    def take_step_kills(self, step: int) -> List[KillEvent]:
        """Consume every pending ``step``-phase event armed at ``step``."""
        taken = []
        for i, event in enumerate(self.events):
            if (
                not self._consumed[i]
                and event.phase == PHASE_STEP
                and event.step == step
            ):
                taken.append(self._take(i))
        return taken

    def take_save_kill(self, step: int) -> Optional[KillEvent]:
        """Consume the pending save-phase event armed at ``step``, if any."""
        for i, event in enumerate(self.events):
            if (
                not self._consumed[i]
                and event.phase
                in (PHASE_SAVE_PRE_COMMIT, PHASE_SAVE_POST_COMMIT)
                and event.step == step
            ):
                return self._take(i)
        return None

    def take_convert_kill(self, step: int) -> Optional[KillEvent]:
        """Consume the earliest pending convert event armed at or
        before ``step`` — 'the next conversion after step N dies'."""
        for i, event in enumerate(self.events):
            if (
                not self._consumed[i]
                and event.phase == PHASE_CONVERT
                and event.step <= step
            ):
                return self._take(i)
        return None
