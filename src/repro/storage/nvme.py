"""NVMe storage cost model (the DeepNVMe substitute).

The paper's ``Load`` op uses DeepNVMe to reach near-peak sequential read
bandwidth.  We cannot measure real NVMe behaviour portably, so I/O time
in benchmarks is reported both as wall-clock (real file I/O on the test
machine) and as *simulated* time from this model: per-request latency
plus bytes / bandwidth, with parallel readers sharing the device up to
a queue-depth cap — the regime where DeepNVMe's batching wins.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class NVMeModel:
    """A device profile.

    Attributes:
        read_gbps / write_gbps: peak sequential bandwidth, GB/s.
        latency_s: per-request setup latency, seconds.
        max_parallel: queue depth at which bandwidth saturates.
    """

    read_gbps: float = 3.2
    write_gbps: float = 1.8
    latency_s: float = 100e-6
    max_parallel: int = 8

    def __post_init__(self) -> None:
        if self.read_gbps <= 0 or self.write_gbps <= 0:
            raise ValueError("bandwidths must be positive")
        if self.latency_s < 0 or self.max_parallel < 1:
            raise ValueError("latency must be >= 0 and max_parallel >= 1")

    def read_time(self, nbytes: int, parallel: int = 1) -> float:
        """Seconds to read ``nbytes`` with ``parallel`` concurrent requests."""
        return self._transfer_time(nbytes, self.read_gbps, parallel)

    def write_time(self, nbytes: int, parallel: int = 1) -> float:
        """Seconds to write ``nbytes`` with ``parallel`` concurrent requests."""
        return self._transfer_time(nbytes, self.write_gbps, parallel)

    def _transfer_time(self, nbytes: int, gbps: float, parallel: int) -> float:
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        effective = min(max(parallel, 1), self.max_parallel)
        # parallel requests amortize latency but share device bandwidth
        return self.latency_s / effective + nbytes / (gbps * 1e9)

    def degraded(self, factor: float) -> "NVMeModel":
        """A profile with bandwidth divided by ``factor`` (>= 1).

        Models a device under interference (noisy neighbours, garbage
        collection); used by fault-injection latency spikes and the
        storage ablations to bound worst-case checkpoint IO time.
        """
        if factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1, got {factor}")
        return NVMeModel(
            read_gbps=self.read_gbps / factor,
            write_gbps=self.write_gbps / factor,
            latency_s=self.latency_s * factor,
            max_parallel=self.max_parallel,
        )


DEFAULT_NVME = NVMeModel()
"""A mid-range datacenter NVMe profile."""
