"""Byte-range IO: windowed ``pread`` reads with a shared block cache.

The conversion and load pipelines never need whole rank files — the
provenance interval maps (:mod:`repro.analysis.provenance`) prove
exactly which byte ranges of which files feed each target atom or
partition slice.  This module supplies the IO layer those plans lower
onto:

* :class:`BlockCache` — a bounded, shared, LRU cache of byte blocks
  keyed ``(file, offset, len)``.  Blocks for one file are kept
  disjoint, so any byte is cached at most once.
* :class:`RangeReader` — ``pread``-style windowed reads over an
  :class:`~repro.storage.store.ObjectStore`.  Requested ranges are
  served from cached blocks where possible; the uncached gaps are
  coalesced (adjacent ranges merge; ``coalesce_gap`` optionally merges
  near-adjacent ones) and fetched with at most ``window_bytes`` per
  disk read, so in-flight buffers stay bounded no matter how large a
  plan's extents are.
* :meth:`RangeReader.digest` — streaming SHA-256 in window-sized
  chunks; the chunks land in the shared cache, so a digest
  verification pass *pre-warms* the very blocks the extract phase
  reads next instead of doubling the IO.

Thread-safety and lock discipline: the cache is internally locked —
one :class:`BlockCache` may be shared by several readers and worker
pools — and every container it owns carries a ``# guarded-by:``
annotation enforced by ``repro lint-src`` (SRC005-SRC008).  Each
reader additionally serializes its disk reads under its own lock
(the ``ObjectStore`` byte accounting is not thread-safe); that lock is
declared ``blocking_ok`` because holding it across the read *is* the
serialization.  Fully-cached requests bypass the IO lock entirely —
they assemble from an atomic coverage snapshot, updating their
counters under a leaf stats lock — so concurrent cache hits never
queue behind a cold miss's disk read.  All locks are
:func:`repro.analysis.lockwitness.make_lock` wrappers, so under
``REPRO_LOCKCHECK=1`` the runtime witness sees every acquisition; when
the witness is off the wrappers cost one list check over a plain lock.
Readers always acquire reader-lock before cache-lock or stats-lock
(reader methods call cache methods, never the reverse; the stats lock
is a leaf), which keeps the runtime lock-order graph acyclic.
"""

from __future__ import annotations

import bisect
import hashlib
import time
from typing import Dict, List, Optional, Tuple

from repro.analysis import lockwitness as _lockwitness
from repro.analysis import schedpoint as _schedpoint
from repro.storage.store import ObjectStore

DEFAULT_WINDOW_BYTES = 1 << 20
"""Default maximum bytes per disk read (and per cached block)."""

DEFAULT_CACHE_BYTES = 64 << 20
"""Default shared block-cache bound."""

_INF = float("inf")

_NEVER_RESIDENT = object()
"""Memo sentinel: this file can never be one cached block (too large)."""


def _overlaps(spans: List[Tuple[int, int]], start: int, end: int) -> bool:
    """Whether ``[start, end)`` intersects any span of a sorted list."""
    i = bisect.bisect_right(spans, (start, _INF)) - 1
    if i >= 0 and spans[i][1] > start:
        return True
    return i + 1 < len(spans) and spans[i + 1][0] < end


class BlockCache:
    """Bounded LRU cache of disjoint byte blocks, keyed ``(file, offset, len)``.

    ``max_bytes`` bounds the total cached payload; insertion evicts
    least-recently-used blocks until the new block fits.  Blocks of one
    file never overlap — :meth:`put` drops a block that intersects an
    already-cached span (two threads that raced to fetch the same gap
    both succeed; the loser's bytes are simply not cached) — so lookups
    can binary-search a sorted per-file span list.

    All mutation happens under ``self._lock``; the ``*_locked`` helpers
    carry ``# holds:`` annotations and double as the runtime witness's
    UCP030 accessor hooks.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self._lock = _lockwitness.make_lock("BlockCache._lock")
        self._blocks: Dict[Tuple[str, int, int], bytes] = {}  # guarded-by: self._lock
        # per-file sorted, disjoint [(start, end)] spans mirroring _blocks
        self._spans: Dict[str, List[Tuple[int, int]]] = {}  # guarded-by: self._lock
        # LRU order over _blocks keys (dicts preserve insertion order;
        # re-inserting on touch keeps the first key least recent)
        self._lru: Dict[Tuple[str, int, int], None] = {}  # guarded-by: self._lock

    def _check_guarded(self, write: bool = False) -> None:
        """UCP030 hook: every ``*_locked`` helper reports its access.

        ``write`` marks the mutations that can change which bytes a
        reader observes (put/evict/clear).  LRU touches and hit
        counters mutate too, but cannot alter any returned byte, so
        they report as reads: the interleaving explorer uses this flag
        as its dependency relation, and classifying unobservable
        mutations as writes would only multiply equivalent schedules.
        """
        ctl = _schedpoint._CONTROLLER
        if ctl is not None:
            ctl.on_access("BlockCache._blocks", write)
        witness = _lockwitness.current()
        if witness is not None:
            witness.check_guarded(self._lock, "BlockCache._blocks")

    def __len__(self) -> int:
        with self._lock:
            self._check_guarded()
            return len(self._blocks)

    def spans(self, rel: str) -> List[Tuple[int, int]]:
        """Sorted disjoint cached ``(start, end)`` spans of one file."""
        with self._lock:
            self._check_guarded()
            return list(self._spans.get(rel, ()))

    def get(self, rel: str, start: int, end: int) -> Optional[bytes]:
        """The cached block exactly spanning ``[start, end)``, LRU-touched."""
        with self._lock:
            return self._get_locked(rel, start, end)

    def _get_locked(self, rel: str, start: int, end: int) -> Optional[bytes]:  # holds: self._lock
        self._check_guarded()
        key = (rel, start, end - start)
        data = self._blocks.get(key)
        if data is not None:
            self._lru.pop(key, None)
            self._lru[key] = None
        return data

    def coverage(
        self, rel: str, start: int, end: int
    ) -> List[Tuple[int, int, bytes]]:
        """Cached blocks overlapping ``[start, end)``, as one atomic snapshot.

        Returns sorted ``(block_start, block_end, data)`` triples and
        LRU-touches each.  Because the caller holds direct references to
        the (immutable) block payloads, a concurrent eviction cannot
        invalidate the snapshot — the reader assembles from it without
        re-entering the cache.
        """
        with self._lock:
            self._check_guarded()
            spans = self._spans.get(rel)
            if not spans:
                return []
            out: List[Tuple[int, int, bytes]] = []
            i = max(0, bisect.bisect_right(spans, (start, _INF)) - 1)
            while i < len(spans):
                s, e = spans[i]
                if s >= end:
                    break
                if e > start:
                    key = (rel, s, e - s)
                    self._lru.pop(key, None)
                    self._lru[key] = None
                    out.append((s, e, self._blocks[key]))
                i += 1
            return out

    def put(self, rel: str, start: int, data: bytes) -> None:
        """Insert one block unless it overlaps an already-cached span.

        The block is stored as immutable ``bytes`` whatever buffer type
        the caller hands in, so every view served out of the cache is
        read-only — a reader cannot poison bytes other readers will
        treat as digest-verified.
        """
        if not data:
            return
        if not isinstance(data, bytes):
            data = bytes(data)
        with self._lock:
            self._put_locked(rel, start, data)

    def put_many(self, rel: str, blocks: List[Tuple[int, bytes]]) -> None:
        """Insert several ``(start, data)`` blocks of one file at once.

        One lock acquisition covers the whole batch, so a windowed fetch
        that lands N blocks pays the cache bookkeeping once instead of N
        times.  Each block follows :meth:`put` semantics individually
        (overlapping or oversized blocks are declined, the rest land).
        """
        items = [
            (start, data if isinstance(data, bytes) else bytes(data))
            for start, data in blocks
            if data
        ]
        if not items:
            return
        with self._lock:
            for start, data in items:
                self._put_locked(rel, start, data)

    def _put_locked(self, rel: str, start: int, data: bytes) -> None:  # holds: self._lock
        self._check_guarded(write=True)
        if len(data) > self.max_bytes:
            return  # a block larger than the whole budget is never cached
        end = start + len(data)
        spans = self._spans.setdefault(rel, [])
        if _overlaps(spans, start, end):
            return  # a concurrent fetch already cached (part of) this range
        while self.current_bytes + len(data) > self.max_bytes:
            self._evict_one_locked()
        self._blocks[(rel, start, len(data))] = data
        self._lru[(rel, start, len(data))] = None
        self.current_bytes += len(data)
        # _evict_one_locked may have dropped the file's last span list
        spans = self._spans.setdefault(rel, spans)
        bisect.insort(spans, (start, end))

    def _evict_one_locked(self) -> None:  # holds: self._lock
        self._check_guarded(write=True)
        key = next(iter(self._lru))
        del self._lru[key]
        rel, start, length = key
        data = self._blocks.pop(key)
        self.current_bytes -= len(data)
        spans = self._spans.get(rel)
        if spans is not None:
            spans.remove((start, start + length))
            if not spans:
                del self._spans[rel]

    def record_lookup(self, hit: bool) -> None:
        """Count one logical lookup (readers report hit/miss through this)."""
        with self._lock:
            self._check_guarded()
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    def record_lookups(self, hits: int, misses: int) -> None:
        """Count a batch of logical lookups under one lock acquisition."""
        if hits == 0 and misses == 0:
            return
        with self._lock:
            self._check_guarded()
            self.hits += hits
            self.misses += misses

    def clear(self) -> None:
        """Drop every cached block (counters are kept)."""
        with self._lock:
            self._check_guarded(write=True)
            self._blocks.clear()
            self._spans.clear()
            self._lru.clear()
            self.current_bytes = 0


def _uncovered(
    covered: List[Tuple[int, int, bytes]], start: int, end: int
) -> List[Tuple[int, int]]:
    """Sub-ranges of ``[start, end)`` not covered by a sorted block list."""
    gaps: List[Tuple[int, int]] = []
    cursor = start
    for s, e, _ in covered:
        if e <= cursor:
            continue
        if s >= end:
            break
        if s > cursor:
            gaps.append((cursor, s))
        cursor = max(cursor, e)
        if cursor >= end:
            break
    if cursor < end:
        gaps.append((cursor, end))
    return gaps


class RangeReader:
    """Windowed, cached, coalescing byte-range reads over an object store.

    Args:
        store: the backing :class:`ObjectStore`; its byte/simulated-time
            accounting sees exactly the bytes this reader pulls from
            disk (cache hits are free).
        cache: optional shared :class:`BlockCache` (one is created
            otherwise).
        window_bytes: maximum bytes per disk read; large coalesced
            spans are split at this granularity, bounding in-flight
            buffer memory.
        coalesce_gap: two requested ranges separated by at most this
            many unneeded bytes are fetched as one read (the gap bytes
            are cached too).  ``0`` coalesces only exactly-adjacent
            ranges.
        parallel: queue depth passed to the store's simulated-NVMe cost
            model.
    """

    def __init__(
        self,
        store: ObjectStore,
        cache: Optional[BlockCache] = None,
        window_bytes: int = DEFAULT_WINDOW_BYTES,
        coalesce_gap: int = 0,
        parallel: int = 1,
    ) -> None:
        if window_bytes < 1:
            raise ValueError(f"window_bytes must be >= 1, got {window_bytes}")
        if coalesce_gap < 0:
            raise ValueError(f"coalesce_gap must be >= 0, got {coalesce_gap}")
        self.store = store
        self.cache = cache if cache is not None else BlockCache()
        self.window_bytes = window_bytes
        self.coalesce_gap = coalesce_gap
        self.parallel = parallel
        self.bytes_read = 0
        self.read_ops = 0
        self.num_batches = 0
        self.ranges_coalesced = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.peak_window_bytes = 0
        self.fetch_seconds = 0.0
        # serializes this reader's disk IO; holding it across the read
        # is the point, hence blocking_ok (UCP031 stays quiet for it).
        # Fully-cached requests never take it: they assemble straight
        # from a coverage snapshot, so concurrent cache hits don't
        # serialize behind a cold miss's disk read.
        self._io_lock = _lockwitness.make_lock(
            "RangeReader._io_lock", blocking_ok=True
        )
        # leaf lock for the counters above, which the lock-free cache-hit
        # path also updates; ordering is io_lock -> stats_lock, never the
        # reverse, so the witness order graph stays acyclic
        self._stats_lock = _lockwitness.make_lock("RangeReader._stats_lock")
        self._sizes: Dict[str, int] = {}  # guarded-by: self._io_lock
        # lock-free memo of (size, whole-file view) pairs (see
        # _resident_view); values are read-only views over immutable
        # bytes, so the unsynchronized get/set race is benign — both
        # racing writers store an equivalent pair.  Files that can never
        # resolve to one block memoize _NEVER_RESIDENT so later calls
        # skip the size() lookup (and its _io_lock hop) entirely.
        self._resident: Dict[str, object] = {}

    # --- helpers -----------------------------------------------------

    @property
    def num_preads(self) -> int:
        """Positioned reads issued against the store (alias of read_ops).

        Each windowed block inside a batched :meth:`ObjectStore
        .read_ranges` call is one seek+read — one ``pread`` on a real
        file — so this is the syscall-shaped counter the benchmarks and
        the CLI report.
        """
        return self.read_ops

    def _count(
        self,
        *,
        hits: int = 0,
        misses: int = 0,
        coalesced: int = 0,
    ) -> None:
        """Update logical-lookup counters (safe from the lock-free path)."""
        with self._stats_lock:
            self.cache_hits += hits
            self.cache_misses += misses
            self.ranges_coalesced += coalesced
        self.cache.record_lookups(hits, misses)

    def _coalesce(
        self, ranges: List[Tuple[int, int]]
    ) -> List[Tuple[int, int]]:
        """Merge requested ``(offset, length)`` ranges into fetch spans.

        Ranges are sorted into sequential file order first, so the fetch
        plan always walks the file forward; near-adjacent ranges (gap <=
        ``coalesce_gap``) and overlapping ranges merge into one span.
        """
        wanted = sorted((o, o + n) for o, n in ranges if n > 0)
        spans: List[Tuple[int, int]] = []
        for s, e in wanted:
            if spans and s <= spans[-1][1] + self.coalesce_gap:
                spans[-1] = (spans[-1][0], max(spans[-1][1], e))
            else:
                spans.append((s, e))
        return spans

    def size(self, rel: str) -> int:
        """Cached on-disk size of one object."""
        with self._io_lock:
            return self._size_locked(rel)

    def _size_locked(self, rel: str) -> int:  # holds: self._io_lock
        size = self._sizes.get(rel)
        if size is None:
            size = self.store.size(rel)
            self._sizes[rel] = size
        return size

    def _resident_view(self, rel: str) -> Optional[Tuple[int, memoryview]]:
        """``(size, view)`` over the whole file if one cached block holds it.

        Small files (at most one read window) land in the cache as a
        single block during the digest pre-warm pass; every later range
        request against them reduces to slicing one read-only view.  The
        resolved view is memoized, which pins the block's payload for
        this reader's lifetime — a later cache eviction frees the cache
        budget but not the bytes, which is exactly the pin the extract
        phase wants for files it is still scattering from.
        """
        memo = self._resident.get(rel)
        if memo is not None:
            return memo if memo is not _NEVER_RESIDENT else None
        size = self.size(rel)
        if size == 0 or size > self.window_bytes:
            # Blocks are at most one read window, so a bigger file can
            # never be served from a single cached block — remember that
            # so later calls don't re-pay the size lookup and probe.
            self._resident[rel] = _NEVER_RESIDENT
            return None
        data = self.cache.get(rel, 0, size)
        if data is None:
            return None
        memo = (size, memoryview(data).toreadonly())
        self._resident[rel] = memo
        return memo

    def _fetch_locked(  # holds: self._io_lock
        self, rel: str, gaps: List[Tuple[int, int]]
    ) -> List[Tuple[int, int, bytes]]:
        """Read uncached gaps from disk in window-sized blocks.

        All blocks go through one batched :meth:`ObjectStore.read_ranges`
        call — one file open no matter how fragmented the plan is.  Each
        block is offered to the cache (which may decline overlapping or
        oversized ones) and returned directly, so assembly never depends
        on what the cache retained.
        """
        blocks: List[Tuple[int, int]] = []
        for start, end in sorted(gaps):
            cursor = start
            while cursor < end:
                step = min(self.window_bytes, end - cursor)
                blocks.append((cursor, step))
                cursor += step
        if not blocks:
            return []
        witness = _lockwitness.current()
        io_before = getattr(self.store, "simulated_read_s", 0.0)
        wall_before = time.perf_counter()
        # deliberate: this reader's lock exists to serialize disk reads
        payloads = self.store.read_ranges(  # srclint: disable=SRC007
            rel, blocks, parallel=self.parallel
        )
        if witness is not None:
            # a cold-cache miss legitimately holds the reader lock for
            # one windowed read, so it stays under the UCP031 budget
            # model (unlike fsync, which fires unconditionally)
            witness.note_blocking(
                f"read_ranges({rel}, {len(blocks)} blocks)",
                getattr(self.store, "simulated_read_s", 0.0) - io_before,
                kind="cache-miss",
            )
        fresh: List[Tuple[int, int, bytes]] = []
        nbytes = 0
        for (start, step), data in zip(blocks, payloads):
            nbytes += step
            self.peak_window_bytes = max(self.peak_window_bytes, step)
            if not isinstance(data, bytes):
                data = bytes(data)
            fresh.append((start, start + step, data))
        # one cache-lock acquisition for the whole batch
        self.cache.put_many(rel, [(s, d) for s, _, d in fresh])
        with self._stats_lock:
            self.bytes_read += nbytes
            self.read_ops += len(blocks)
            self.num_batches += 1
            self.fetch_seconds += time.perf_counter() - wall_before
        return fresh

    @staticmethod
    def _assemble(
        rel: str,
        offset: int,
        length: int,
        blocks: List[Tuple[int, int, bytes]],
    ) -> memoryview:
        """Build the requested bytes from a sorted disjoint block list.

        ``blocks`` mixes the cache-coverage snapshot with freshly read
        blocks; the caller holds references to every payload, so no
        concurrent eviction can invalidate them.  The cursor only moves
        forward, so after a bisect to the first candidate a single scan
        suffices.
        """
        end = offset + length
        cursor = offset
        pieces: List[Tuple[int, bytes, int, int]] = []
        i = max(0, bisect.bisect_right(blocks, (cursor, _INF)) - 1)
        while cursor < end:
            while i < len(blocks) and blocks[i][1] <= cursor:
                i += 1
            if i >= len(blocks) or blocks[i][0] > cursor:
                raise RuntimeError(
                    f"{rel}: bytes at offset {cursor} unavailable after fetch"
                )
            s, e, data = blocks[i]
            hi = min(e, end)
            pieces.append((cursor, data, cursor - s, hi - s))
            cursor = hi
        if len(pieces) == 1:
            lo, block, b_lo, b_hi = pieces[0]
            # zero-copy fast path; toreadonly() guarantees the cache's
            # bytes cannot be poisoned even if a block type regresses
            return memoryview(block)[b_lo:b_hi].toreadonly()
        # multi-piece: one gather into a scratch buffer, returned as a
        # read-only view directly over it — no trailing bytes() copy
        out = bytearray(length)
        for lo, block, b_lo, b_hi in pieces:
            out[lo - offset : lo - offset + (b_hi - b_lo)] = block[b_lo:b_hi]
        return memoryview(out).toreadonly()

    # --- public API --------------------------------------------------

    def read(self, rel: str, offset: int, length: int) -> memoryview:
        """Bytes ``[offset, offset + length)`` of one object.

        Cached spans are served without disk IO; uncached gaps are
        fetched in at most ``window_bytes``-sized reads.  When one
        cached block covers the whole range the returned memoryview is
        zero-copy into the cache.
        """
        return self.read_multi(rel, [(offset, length)])[0]

    def read_multi(
        self, rel: str, ranges: List[Tuple[int, int]]
    ) -> List[memoryview]:
        """Read several ``(offset, length)`` ranges of one object at once.

        Near-adjacent ranges (gap <= ``coalesce_gap``) are fetched with
        one disk read; each requested range still comes back as its own
        buffer, in input order.  A request fully covered by the cache is
        assembled straight from a coverage snapshot without touching the
        IO lock, so concurrent hits never wait behind a disk read.
        """
        if not ranges:
            return []
        for offset, length in ranges:
            if offset < 0 or length < 0:
                raise ValueError(f"invalid range ({offset}, {length})")
        resident = self._resident_view(rel)
        if resident is not None:
            size, view = resident
            if all(offset + length <= size for offset, length in ranges):
                out = [
                    view[offset : offset + length]
                    if length > 0 else memoryview(b"")
                    for offset, length in ranges
                ]
                self._count(hits=sum(1 for _, n in ranges if n > 0))
                return out
        spans = self._coalesce(ranges)
        n_wanted = sum(1 for _, n in ranges if n > 0)
        served = self._try_cached(rel, ranges, spans, n_wanted)
        if served is not None:
            return served
        with self._io_lock:
            return self._read_multi_locked(rel, ranges, spans, n_wanted)

    def _try_cached(
        self,
        rel: str,
        ranges: List[Tuple[int, int]],
        spans: List[Tuple[int, int]],
        n_wanted: int,
    ) -> Optional[List[memoryview]]:
        """Serve a fully-cached request without the IO lock, else None.

        The coverage snapshot holds direct references to the immutable
        block payloads, so a concurrent eviction between snapshot and
        assembly cannot invalidate the result.  Any gap at all falls
        back to the locked path (which re-snapshots under the lock).
        """
        blocks: List[Tuple[int, int, bytes]] = []
        for s, e in spans:
            cov = self.cache.coverage(rel, s, e)
            if _uncovered(cov, s, e):
                return None
            blocks.extend(cov)
        covered: Dict[Tuple[int, int], bytes] = {
            (s, e): data for s, e, data in blocks
        }
        sorted_blocks = sorted(
            (s, e, data) for (s, e), data in covered.items()
        )
        out = [
            self._assemble(rel, offset, length, sorted_blocks)
            if length > 0 else memoryview(b"")
            for offset, length in ranges
        ]
        self._count(
            hits=len(spans), coalesced=n_wanted - len(spans)
        )
        return out

    def _read_multi_locked(  # holds: self._io_lock
        self,
        rel: str,
        ranges: List[Tuple[int, int]],
        spans: List[Tuple[int, int]],
        n_wanted: int,
    ) -> List[memoryview]:
        # one coverage snapshot per span; a cached block straddling two
        # spans would appear twice, hence the keyed dedup
        covered: Dict[Tuple[int, int], bytes] = {}
        all_gaps: List[Tuple[int, int]] = []
        hits = misses = 0
        for s, e in spans:
            cov = self.cache.coverage(rel, s, e)
            gaps = _uncovered(cov, s, e)
            if sum(b_e - b_s for b_s, b_e, _ in cov) > 0:
                hits += 1
            if gaps:
                misses += 1
            for b_s, b_e, data in cov:
                covered[(b_s, b_e)] = data
            all_gaps.extend(gaps)
        self._count(
            hits=hits, misses=misses, coalesced=n_wanted - len(spans)
        )
        fresh = self._fetch_locked(rel, all_gaps)
        blocks = sorted(
            [(s, e, data) for (s, e), data in covered.items()] + fresh
        )
        return [
            self._assemble(rel, offset, length, blocks)
            if length > 0 else memoryview(b"")
            for offset, length in ranges
        ]

    def digest(self, rel: str, chunk_bytes: Optional[int] = None) -> str:
        """Streaming SHA-256 of a whole object, in bounded chunks.

        Each chunk goes through :meth:`read`, so the verified blocks
        stay in the shared cache for the extract phase to reuse — the
        digest pass and the data pass together read each byte from disk
        once.  Chunks default to this reader's window so the cached
        blocks match the read granularity: a file no larger than one
        window lands as a single block, which the :meth:`read_multi`
        resident-view fast path then serves without any copies.
        """
        chunk = chunk_bytes or self.window_bytes
        size = self.size(rel)
        hasher = hashlib.sha256()
        cursor = 0
        while cursor < size:
            step = min(chunk, size - cursor)
            hasher.update(self.read(rel, cursor, step))
            cursor += step
        return hasher.hexdigest()
