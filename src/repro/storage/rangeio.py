"""Byte-range IO: windowed ``pread`` reads with a shared block cache.

The conversion and load pipelines never need whole rank files — the
provenance interval maps (:mod:`repro.analysis.provenance`) prove
exactly which byte ranges of which files feed each target atom or
partition slice.  This module supplies the IO layer those plans lower
onto:

* :class:`BlockCache` — a bounded, shared, LRU cache of byte blocks
  keyed ``(file, offset, len)``.  Blocks for one file are kept
  disjoint, so any byte is cached at most once.
* :class:`RangeReader` — ``pread``-style windowed reads over an
  :class:`~repro.storage.store.ObjectStore`.  Requested ranges are
  served from cached blocks where possible; the uncached gaps are
  coalesced (adjacent ranges merge; ``coalesce_gap`` optionally merges
  near-adjacent ones) and fetched with at most ``window_bytes`` per
  disk read, so in-flight buffers stay bounded no matter how large a
  plan's extents are.
* :meth:`RangeReader.digest` — streaming SHA-256 in window-sized
  chunks; the chunks land in the shared cache, so a digest
  verification pass *pre-warms* the very blocks the extract phase
  reads next instead of doubling the IO.

Thread-safe: one reader may serve a whole worker pool (the
``ObjectStore`` byte accounting is not itself thread-safe, so the
reader serializes its disk reads under a lock).
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.storage.store import ObjectStore

DEFAULT_WINDOW_BYTES = 1 << 20
"""Default maximum bytes per disk read (and per cached block)."""

DEFAULT_CACHE_BYTES = 64 << 20
"""Default shared block-cache bound."""

_NO_SPANS: List[Tuple[int, int]] = []
"""Shared empty span list for files with nothing cached."""

_INF = float("inf")


class BlockCache:
    """Bounded LRU cache of disjoint byte blocks, keyed ``(file, offset, len)``.

    ``max_bytes`` bounds the total cached payload; insertion evicts
    least-recently-used blocks until the new block fits.  Blocks of one
    file never overlap — the reader only inserts gaps it measured
    against the current cache — so lookups can binary-search a sorted
    per-file span list.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self._blocks: "OrderedDict[Tuple[str, int, int], bytes]" = OrderedDict()
        # per-file sorted, disjoint [(start, end)] spans mirroring _blocks
        self._spans: Dict[str, List[Tuple[int, int]]] = {}

    def __len__(self) -> int:
        return len(self._blocks)

    def spans(self, rel: str) -> List[Tuple[int, int]]:
        """Sorted disjoint cached ``(start, end)`` spans of one file."""
        return list(self._spans.get(rel, ()))

    def spans_view(self, rel: str) -> List[Tuple[int, int]]:
        """Like :meth:`spans` but without copying — read-only; invalidated
        by any :meth:`put` or eviction."""
        return self._spans.get(rel, _NO_SPANS)

    def get(self, rel: str, start: int, end: int) -> Optional[bytes]:
        """The cached block exactly spanning ``[start, end)``, LRU-touched."""
        key = (rel, start, end - start)
        data = self._blocks.get(key)
        if data is not None:
            self._blocks.move_to_end(key)
        return data

    def put(self, rel: str, start: int, data: bytes) -> None:
        """Insert one block; caller guarantees it overlaps no cached span.

        The block is stored as immutable ``bytes`` whatever buffer type
        the caller hands in, so every view served out of the cache is
        read-only — a reader cannot poison bytes other readers will
        treat as digest-verified.
        """
        if not data:
            return
        if not isinstance(data, bytes):
            data = bytes(data)
        if len(data) > self.max_bytes:
            return  # a block larger than the whole budget is never cached
        end = start + len(data)
        while self.current_bytes + len(data) > self.max_bytes:
            self._evict_one()
        self._blocks[(rel, start, len(data))] = data
        self.current_bytes += len(data)
        spans = self._spans.setdefault(rel, [])
        bisect.insort(spans, (start, end))

    def _evict_one(self) -> None:
        (rel, start, length), data = self._blocks.popitem(last=False)
        self.current_bytes -= len(data)
        spans = self._spans.get(rel)
        if spans is not None:
            spans.remove((start, start + length))
            if not spans:
                del self._spans[rel]

    def clear(self) -> None:
        """Drop every cached block (counters are kept)."""
        self._blocks.clear()
        self._spans.clear()
        self.current_bytes = 0


class RangeReader:
    """Windowed, cached, coalescing byte-range reads over an object store.

    Args:
        store: the backing :class:`ObjectStore`; its byte/simulated-time
            accounting sees exactly the bytes this reader pulls from
            disk (cache hits are free).
        cache: optional shared :class:`BlockCache` (one is created
            otherwise).
        window_bytes: maximum bytes per disk read; large coalesced
            spans are split at this granularity, bounding in-flight
            buffer memory.
        coalesce_gap: two requested ranges separated by at most this
            many unneeded bytes are fetched as one read (the gap bytes
            are cached too).  ``0`` coalesces only exactly-adjacent
            ranges.
        parallel: queue depth passed to the store's simulated-NVMe cost
            model.
    """

    def __init__(
        self,
        store: ObjectStore,
        cache: Optional[BlockCache] = None,
        window_bytes: int = DEFAULT_WINDOW_BYTES,
        coalesce_gap: int = 0,
        parallel: int = 1,
    ) -> None:
        if window_bytes < 1:
            raise ValueError(f"window_bytes must be >= 1, got {window_bytes}")
        if coalesce_gap < 0:
            raise ValueError(f"coalesce_gap must be >= 0, got {coalesce_gap}")
        self.store = store
        self.cache = cache if cache is not None else BlockCache()
        self.window_bytes = window_bytes
        self.coalesce_gap = coalesce_gap
        self.parallel = parallel
        self.bytes_read = 0
        self.read_ops = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.peak_window_bytes = 0
        self._sizes: Dict[str, int] = {}
        self._lock = threading.Lock()

    # --- helpers -----------------------------------------------------

    def size(self, rel: str) -> int:
        """Cached on-disk size of one object."""
        with self._lock:
            return self._size_locked(rel)

    def _size_locked(self, rel: str) -> int:
        size = self._sizes.get(rel)
        if size is None:
            size = self.store.size(rel)
            self._sizes[rel] = size
        return size

    def _fetch_locked(self, rel: str, gaps: List[Tuple[int, int]]) -> None:
        """Read uncached gaps from disk in window-sized blocks, caching.

        All blocks go through one batched :meth:`ObjectStore.read_ranges`
        call — one file open no matter how fragmented the plan is.
        """
        blocks: List[Tuple[int, int]] = []
        for start, end in gaps:
            cursor = start
            while cursor < end:
                step = min(self.window_bytes, end - cursor)
                blocks.append((cursor, step))
                cursor += step
        if not blocks:
            return
        for (start, step), data in zip(
            blocks, self.store.read_ranges(rel, blocks, parallel=self.parallel)
        ):
            self.bytes_read += step
            self.read_ops += 1
            self.peak_window_bytes = max(self.peak_window_bytes, step)
            if not isinstance(data, bytes):
                data = bytes(data)
            self.cache.put(rel, start, data)
            # stash the freshly read block for the assembly pass even if
            # the cache immediately evicted it under memory pressure
            self._fresh[(rel, start, step)] = data

    def _gaps_locked(
        self, rel: str, start: int, end: int
    ) -> List[Tuple[int, int]]:
        """Sub-ranges of ``[start, end)`` not covered by cached spans."""
        gaps: List[Tuple[int, int]] = []
        cursor = start
        spans = self.cache.spans_view(rel)
        i = max(0, bisect.bisect_right(spans, (cursor, _INF)) - 1)
        n = len(spans)
        while i < n:
            s, e = spans[i]
            if e <= cursor:
                i += 1
                continue
            if s >= end:
                break
            if s > cursor:
                gaps.append((cursor, s))
            cursor = max(cursor, e)
            if cursor >= end:
                break
            i += 1
        if cursor < end:
            gaps.append((cursor, end))
        return gaps

    def _assemble_locked(
        self,
        rel: str,
        offset: int,
        length: int,
        fresh: List[Tuple[int, int, bytes]],
    ) -> memoryview:
        """Build the requested bytes from cached + freshly read blocks.

        Cached spans are preferred; wherever a block was evicted between
        fetch and assembly (a request larger than the whole cache), the
        sorted ``fresh`` block stash fills in.  Both lists are sorted
        and the cursor only moves forward, so after a bisect to the
        first candidate a two-pointer merge suffices.
        """
        end = offset + length
        cursor = offset
        pieces: List[Tuple[int, bytes, int, int]] = []
        spans = self.cache.spans_view(rel)
        si = max(0, bisect.bisect_right(spans, (cursor, _INF)) - 1)
        fi = 0
        while cursor < end:
            block: Optional[Tuple[int, int, bytes]] = None
            while si < len(spans) and spans[si][1] <= cursor:
                si += 1
            if si < len(spans) and spans[si][0] <= cursor:
                s, e = spans[si]
                data = self.cache.get(rel, s, e)
                if data is not None:
                    block = (s, e, data)
            if block is None:
                while fi < len(fresh) and fresh[fi][1] <= cursor:
                    fi += 1
                if fi < len(fresh) and fresh[fi][0] <= cursor:
                    block = fresh[fi]
            if block is None:
                raise RuntimeError(
                    f"{rel}: bytes at offset {cursor} unavailable after fetch"
                )
            s, e, data = block
            hi = min(e, end)
            pieces.append((cursor, data, cursor - s, hi - s))
            cursor = hi
        if len(pieces) == 1:
            lo, block, b_lo, b_hi = pieces[0]
            # zero-copy fast path; toreadonly() guarantees the cache's
            # bytes cannot be poisoned even if a block type regresses
            return memoryview(block)[b_lo:b_hi].toreadonly()
        out = bytearray(length)
        for lo, block, b_lo, b_hi in pieces:
            out[lo - offset : lo - offset + (b_hi - b_lo)] = block[b_lo:b_hi]
        return memoryview(bytes(out)).toreadonly()

    # --- public API --------------------------------------------------

    def read(self, rel: str, offset: int, length: int) -> memoryview:
        """Bytes ``[offset, offset + length)`` of one object.

        Cached spans are served without disk IO; uncached gaps are
        fetched in at most ``window_bytes``-sized reads.  When one
        cached block covers the whole range the returned memoryview is
        zero-copy into the cache.
        """
        return self.read_multi(rel, [(offset, length)])[0]

    def read_multi(
        self, rel: str, ranges: List[Tuple[int, int]]
    ) -> List[memoryview]:
        """Read several ``(offset, length)`` ranges of one object at once.

        Near-adjacent ranges (gap <= ``coalesce_gap``) are fetched with
        one disk read; each requested range still comes back as its own
        buffer, in input order.
        """
        if not ranges:
            return []
        for offset, length in ranges:
            if offset < 0 or length < 0:
                raise ValueError(f"invalid range ({offset}, {length})")
        with self._lock:
            self._fresh: Dict[Tuple[str, int, int], bytes] = {}
            # coalesce the requested ranges into fetch spans
            wanted = sorted(
                (o, o + n) for o, n in ranges if n > 0
            )
            spans: List[Tuple[int, int]] = []
            for s, e in wanted:
                if spans and s <= spans[-1][1] + self.coalesce_gap:
                    spans[-1] = (spans[-1][0], max(spans[-1][1], e))
                else:
                    spans.append((s, e))
            all_gaps: List[Tuple[int, int]] = []
            for s, e in spans:
                gaps = self._gaps_locked(rel, s, e)
                covered = (e - s) - sum(g_e - g_s for g_s, g_e in gaps)
                if covered > 0:
                    self.cache_hits += 1
                    self.cache.hits += 1
                if gaps:
                    self.cache_misses += 1
                    self.cache.misses += 1
                all_gaps.extend(gaps)
            self._fetch_locked(rel, all_gaps)
            fresh = sorted(
                (f_start, f_start + f_len, data)
                for (f_rel, f_start, f_len), data in self._fresh.items()
                if f_rel == rel
            )
            out = [
                self._assemble_locked(rel, offset, length, fresh)
                if length > 0 else memoryview(b"")
                for offset, length in ranges
            ]
            self._fresh = {}
            return out

    def digest(self, rel: str, chunk_bytes: int = DEFAULT_WINDOW_BYTES) -> str:
        """Streaming SHA-256 of a whole object, in bounded chunks.

        Each chunk goes through :meth:`read`, so the verified blocks
        stay in the shared cache for the extract phase to reuse — the
        digest pass and the data pass together read each byte from disk
        once.
        """
        size = self.size(rel)
        hasher = hashlib.sha256()
        cursor = 0
        while cursor < size:
            step = min(chunk_bytes, size - cursor)
            hasher.update(self.read(rel, cursor, step))
            cursor += step
        return hasher.hexdigest()
