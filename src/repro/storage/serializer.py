"""``.npt``: a self-describing binary container for checkpoint objects.

Layout::

    MAGIC "NPT\\x01" | header_len: u64 LE | header JSON (utf-8) |
    zero padding to 64-byte boundary | tensor payloads (64-byte aligned)

The header is a JSON tree mirroring the saved object; numpy arrays are
replaced by ``{"__tensor__": i}`` markers indexing a ``tensors`` table
of (dtype, shape, offset, nbytes).  Supported leaves: ndarray, int,
float, str, bool, None; containers: dict (str keys) and list.

This replaces ``torch.save`` — same role (one object file per rank /
per atom), but with an explicit, versioned format instead of pickle.
"""

from __future__ import annotations

import dataclasses
import io
import json
import zlib
from typing import Any, BinaryIO, Dict, List, Optional, Tuple

import numpy as np

MAGIC = b"NPT\x01"
_ALIGN = 64


class SerializationError(ValueError):
    """Raised for malformed input objects or corrupt files."""


class ChecksumError(SerializationError):
    """A tensor payload failed its CRC32 integrity check."""


def _align(offset: int) -> int:
    return ((offset + _ALIGN - 1) // _ALIGN) * _ALIGN


def _encode(obj: Any, tensors: List[np.ndarray]) -> Any:
    if isinstance(obj, np.ndarray):
        index = len(tensors)
        tensors.append(np.ascontiguousarray(obj))
        return {"__tensor__": index}
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise SerializationError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            if key == "__tensor__":
                raise SerializationError("'__tensor__' is a reserved key")
            out[key] = _encode(value, tensors)
        return out
    if isinstance(obj, (list, tuple)):
        return [_encode(v, tensors) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (str, bool, int, float)) or obj is None:
        return obj
    raise SerializationError(f"unsupported type {type(obj).__name__}")


def _decode(node: Any, tensors: List[np.ndarray]) -> Any:
    if isinstance(node, dict):
        if set(node) == {"__tensor__"}:
            return tensors[node["__tensor__"]]
        return {key: _decode(value, tensors) for key, value in node.items()}
    if isinstance(node, list):
        return [_decode(v, tensors) for v in node]
    return node


def serialize(obj: Any) -> bytes:
    """Encode an object tree to ``.npt`` bytes."""
    buffer = io.BytesIO()
    write_npt(buffer, obj)
    return buffer.getvalue()


def write_npt(fh: BinaryIO, obj: Any) -> int:
    """Write an object tree to a binary stream; returns bytes written."""
    tensors: List[np.ndarray] = []
    tree = _encode(obj, tensors)

    table: List[Dict] = []
    payload_start = 0  # relative to payload section; fixed up below
    offset = 0
    for tensor in tensors:
        offset = _align(offset)
        table.append(
            {
                "dtype": tensor.dtype.str,
                "shape": list(tensor.shape),
                "offset": offset,
                "nbytes": int(tensor.nbytes),
                "crc32": zlib.crc32(tensor.tobytes()) & 0xFFFFFFFF,
            }
        )
        offset += tensor.nbytes

    header = json.dumps({"tree": tree, "tensors": table}).encode("utf-8")
    header_block = len(MAGIC) + 8 + len(header)
    payload_start = _align(header_block)

    written = 0
    written += fh.write(MAGIC)
    written += fh.write(len(header).to_bytes(8, "little"))
    written += fh.write(header)
    written += fh.write(b"\x00" * (payload_start - header_block))
    cursor = 0
    for tensor, entry in zip(tensors, table):
        pad = entry["offset"] - cursor
        if pad:
            written += fh.write(b"\x00" * pad)
            cursor += pad
        written += fh.write(tensor.tobytes())
        cursor += tensor.nbytes
    return written


def _read_exact(fh: BinaryIO, count: int, what: str) -> bytes:
    data = fh.read(count)
    if len(data) != count:
        raise SerializationError(f"truncated file while reading {what}")
    return data


def read_npt(fh: BinaryIO, verify_checksums: bool = True) -> Any:
    """Read an object tree from a binary stream.

    Args:
        fh: binary stream positioned at the file start.
        verify_checksums: validate each tensor payload's CRC32 (on by
            default — silent bit-rot in optimizer state is far worse
            than the verification cost).
    """
    magic = _read_exact(fh, len(MAGIC), "magic")
    if magic != MAGIC:
        raise SerializationError(f"bad magic {magic!r}; not an .npt file")
    header_len = int.from_bytes(_read_exact(fh, 8, "header length"), "little")
    header = json.loads(_read_exact(fh, header_len, "header").decode("utf-8"))
    header_block = len(MAGIC) + 8 + header_len
    _read_exact(fh, _align(header_block) - header_block, "header padding")

    tensors: List[np.ndarray] = []
    cursor = 0
    for index, entry in enumerate(header["tensors"]):
        pad = entry["offset"] - cursor
        if pad:
            _read_exact(fh, pad, "tensor padding")
            cursor += pad
        raw = _read_exact(fh, entry["nbytes"], "tensor payload")
        cursor += entry["nbytes"]
        expected_crc = entry.get("crc32")
        if verify_checksums and expected_crc is not None:
            actual = zlib.crc32(raw) & 0xFFFFFFFF
            if actual != expected_crc:
                raise ChecksumError(
                    f"tensor {index} failed CRC32: stored "
                    f"{expected_crc:#010x}, computed {actual:#010x} "
                    f"(corrupt or tampered payload)"
                )
        arr = np.frombuffer(raw, dtype=np.dtype(entry["dtype"]))
        tensors.append(arr.reshape(entry["shape"]).copy())
    return _decode(header["tree"], tensors)


def deserialize(data: bytes) -> Any:
    """Decode ``.npt`` bytes back to the object tree."""
    return read_npt(io.BytesIO(data))


@dataclasses.dataclass(frozen=True)
class TensorStub:
    """Header-level description of a tensor payload that was not read.

    Stands in for the ``np.ndarray`` leaves when an object is decoded
    from its header alone (:func:`read_npt_header`) — shape/dtype
    analysis without touching payload bytes.
    """

    dtype: str
    shape: Tuple[int, ...]
    nbytes: int

    @property
    def numel(self) -> int:
        """Element count implied by the shape."""
        n = 1
        for d in self.shape:
            n *= d
        return n


@dataclasses.dataclass(frozen=True)
class TensorIndexEntry:
    """Header-level description of a tensor payload *with its location*.

    Like :class:`TensorStub`, but carrying the payload's absolute byte
    offset inside the ``.npt`` file — the handle a byte-range reader
    needs to ``pread`` any element sub-range of the tensor without
    materializing the file.
    """

    dtype: str
    shape: Tuple[int, ...]
    offset: int
    nbytes: int
    crc32: Optional[int] = None

    @property
    def numel(self) -> int:
        """Element count implied by the shape."""
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return np.dtype(self.dtype).itemsize

    def element_range(self, start: int, count: int) -> Tuple[int, int]:
        """Absolute ``(file offset, byte length)`` of an element run."""
        if start < 0 or count < 0 or (start + count) > self.numel:
            raise SerializationError(
                f"element range [{start}, {start + count}) exceeds tensor "
                f"extent {self.numel}"
            )
        item = self.itemsize
        return self.offset + start * item, count * item


def read_npt_index(fh: BinaryIO) -> Any:
    """Decode an object tree whose tensor leaves carry file offsets.

    The byte-range counterpart of :func:`read_npt_header`: tensor
    leaves come back as :class:`TensorIndexEntry` with the *absolute*
    file offset of each payload, so a planner can turn (tensor, element
    range) into exact ``pread`` calls.  Only the header bytes are
    consumed from the stream.
    """
    magic = _read_exact(fh, len(MAGIC), "magic")
    if magic != MAGIC:
        raise SerializationError(f"bad magic {magic!r}; not an .npt file")
    header_len = int.from_bytes(_read_exact(fh, 8, "header length"), "little")
    header = json.loads(_read_exact(fh, header_len, "header").decode("utf-8"))
    payload_start = _align(len(MAGIC) + 8 + header_len)
    entries = [
        TensorIndexEntry(
            dtype=entry["dtype"],
            shape=tuple(int(d) for d in entry["shape"]),
            offset=payload_start + int(entry["offset"]),
            nbytes=int(entry["nbytes"]),
            crc32=entry.get("crc32"),
        )
        for entry in header["tensors"]
    ]
    return _decode(header["tree"], entries)


def read_npt_header(fh: BinaryIO) -> Any:
    """Decode an object tree from the ``.npt`` header only.

    Tensor leaves come back as :class:`TensorStub` (dtype, shape,
    nbytes) instead of arrays: no payload bytes are read, validated, or
    materialized.  This is what lets the static layout linter inspect a
    rank file's partition metadata and flat-array shapes at header cost
    regardless of checkpoint size.

    Args:
        fh: binary stream positioned at the file start.  Only the magic,
            header length, and header JSON are consumed.
    """
    magic = _read_exact(fh, len(MAGIC), "magic")
    if magic != MAGIC:
        raise SerializationError(f"bad magic {magic!r}; not an .npt file")
    header_len = int.from_bytes(_read_exact(fh, 8, "header length"), "little")
    header = json.loads(_read_exact(fh, header_len, "header").decode("utf-8"))
    stubs = [
        TensorStub(
            dtype=entry["dtype"],
            shape=tuple(int(d) for d in entry["shape"]),
            nbytes=int(entry["nbytes"]),
        )
        for entry in header["tensors"]
    ]
    return _decode(header["tree"], stubs)


def deserialize_header(data: bytes) -> Any:
    """Header-only counterpart of :func:`deserialize` (tensors as stubs)."""
    return read_npt_header(io.BytesIO(data))


def validate_npt(data: bytes) -> None:
    """Structurally validate ``.npt`` bytes without materializing arrays.

    Walks the container exactly like :func:`read_npt` — magic, header,
    padding, per-tensor CRC32 — but never copies or reshapes payloads,
    so integrity sweeps over large checkpoints stay cheap.  Raises
    :class:`SerializationError` / :class:`ChecksumError` on any damage.
    """
    fh = io.BytesIO(data)
    magic = _read_exact(fh, len(MAGIC), "magic")
    if magic != MAGIC:
        raise SerializationError(f"bad magic {magic!r}; not an .npt file")
    header_len = int.from_bytes(_read_exact(fh, 8, "header length"), "little")
    header = json.loads(_read_exact(fh, header_len, "header").decode("utf-8"))
    header_block = len(MAGIC) + 8 + header_len
    _read_exact(fh, _align(header_block) - header_block, "header padding")
    cursor = 0
    for index, entry in enumerate(header["tensors"]):
        pad = entry["offset"] - cursor
        if pad:
            _read_exact(fh, pad, "tensor padding")
            cursor += pad
        raw = _read_exact(fh, entry["nbytes"], "tensor payload")
        cursor += entry["nbytes"]
        expected_crc = entry.get("crc32")
        if expected_crc is not None:
            actual = zlib.crc32(raw) & 0xFFFFFFFF
            if actual != expected_crc:
                raise ChecksumError(
                    f"tensor {index} failed CRC32: stored "
                    f"{expected_crc:#010x}, computed {actual:#010x} "
                    f"(corrupt or tampered payload)"
                )
