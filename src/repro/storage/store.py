"""Directory-backed object store with byte and simulated-time accounting."""

from __future__ import annotations

import os
import pathlib
from typing import Any, List

from repro.storage.nvme import DEFAULT_NVME, NVMeModel
from repro.storage.serializer import read_npt, write_npt


class ObjectStore:
    """Persist ``.npt`` objects under a base directory.

    Tracks bytes read/written and accumulates simulated NVMe time, so
    the benchmark harness can report the same save/load cost curves as
    the paper's Figs 11-12 without real datacenter storage.
    """

    def __init__(self, base_dir: str, nvme: NVMeModel = DEFAULT_NVME) -> None:
        self.base = pathlib.Path(base_dir)
        self.base.mkdir(parents=True, exist_ok=True)
        self._base_str = os.path.normpath(str(self.base))
        self.nvme = nvme
        self.bytes_written = 0
        self.bytes_read = 0
        self.simulated_write_s = 0.0
        self.simulated_read_s = 0.0

    def _resolve(self, rel_path: str) -> pathlib.Path:
        # lexical containment check (no symlink resolution syscalls:
        # this runs once per atom access on the load hot path)
        normalized = os.path.normpath(os.path.join(self._base_str, rel_path))
        if not (normalized + os.sep).startswith(self._base_str + os.sep):
            raise ValueError(f"path {rel_path!r} escapes the store root")
        return pathlib.Path(normalized)

    def save(self, rel_path: str, obj: Any, parallel: int = 1) -> int:
        """Serialize and write one object; returns bytes written."""
        path = self._resolve(rel_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "wb") as fh:
            nbytes = write_npt(fh, obj)
        os.replace(tmp, path)
        self.bytes_written += nbytes
        self.simulated_write_s += self.nvme.write_time(nbytes, parallel)
        return nbytes

    def load(self, rel_path: str, parallel: int = 1) -> Any:
        """Read and deserialize one object."""
        path = self._resolve(rel_path)
        if not path.is_file():
            raise FileNotFoundError(f"no object at {rel_path!r} in {self.base}")
        nbytes = path.stat().st_size
        with open(path, "rb") as fh:
            obj = read_npt(fh)
        self.bytes_read += nbytes
        self.simulated_read_s += self.nvme.read_time(nbytes, parallel)
        return obj

    def exists(self, rel_path: str) -> bool:
        """Whether an object exists at the path."""
        return self._resolve(rel_path).is_file()

    def list(self, rel_dir: str = ".") -> List[str]:
        """Relative paths of all objects under a directory, sorted."""
        root = self._resolve(rel_dir)
        if not root.is_dir():
            return []
        out = []
        for path in root.rglob("*"):
            if path.is_file() and not path.name.endswith(".tmp"):
                out.append(str(path.relative_to(self.base)))
        return sorted(out)

    def delete(self, rel_path: str) -> None:
        """Remove one object (missing objects are ignored)."""
        path = self._resolve(rel_path)
        if path.is_file():
            path.unlink()

    def write_text(self, rel_path: str, text: str) -> None:
        """Write a small text marker file (e.g. the ``latest`` tag)."""
        path = self._resolve(rel_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        self.bytes_written += len(text.encode())

    def read_text(self, rel_path: str) -> str:
        """Read a text marker file."""
        path = self._resolve(rel_path)
        if not path.is_file():
            raise FileNotFoundError(f"no text file at {rel_path!r} in {self.base}")
        return path.read_text()

    def reset_accounting(self) -> None:
        """Zero the byte and simulated-time counters."""
        self.bytes_written = 0
        self.bytes_read = 0
        self.simulated_write_s = 0.0
        self.simulated_read_s = 0.0
