"""Directory-backed object store with byte and simulated-time accounting.

All writes are *atomic commits*: bytes land in a ``*.tmp`` sibling and
are published with ``os.replace``, so a reader never observes a torn
object — it sees either the previous version or the new one.  With
``durable`` (the default, controlled by ``REPRO_DURABLE``) commits are
additionally *power-loss safe*: the temp file is fsynced before the
rename and the parent directory after it, so the publish can neither
become durable ahead of the bytes it names nor be rolled back by a
crash.  Every IO boundary runs through the optional
:class:`~repro.storage.faults.FaultPolicy` hook (crash injection,
transient errors, latency spikes), and transient faults are retried
under a :class:`~repro.storage.faults.RetryPolicy` whose backoff is
charged to the simulated NVMe clock.

Every file effect (write / fsync / rename / directory fsync / unlink)
is reported to the active FS-op witness
(:mod:`repro.analysis.fswitness`) when one is tracing, feeding the
crash-state enumerator behind ``repro lint-trace --fs``; the commit
sequence itself is statically checked by ``repro lint-src --fs``
(SRC009-SRC012).  Both hooks are one ``sys.modules`` lookup when off.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import posixpath
import sys
from typing import Any, List, Optional, Tuple

from repro.storage.faults import FaultPolicy, RetryPolicy, TransientIOError
from repro.storage.nvme import DEFAULT_NVME, NVMeModel
from repro.storage.serializer import (
    deserialize,
    read_npt_header,
    read_npt_index,
    serialize,
)


def sha256_hex(data: bytes) -> str:
    """Content digest used by checkpoint manifests."""
    return hashlib.sha256(data).hexdigest()


def _durable_default() -> bool:
    """Whether commits default to power-loss-safe (``REPRO_DURABLE``).

    Durability is on unless the environment explicitly opts out with
    ``REPRO_DURABLE=0`` — the off-switch exists for speed-sensitive
    test suites, where two extra fsyncs per object write dominate the
    runtime of tiny checkpoints.
    """
    return os.environ.get("REPRO_DURABLE", "1") != "0"


def _fsync_dir(dir_path: pathlib.Path) -> None:
    """Fsync a directory so entry ops inside it survive power loss.

    A rename or unlink only mutates the parent directory; POSIX makes
    that mutation durable at the next fsync of the *directory*, not of
    any file.  Skipping this leaves a committed-looking publish that a
    crash can roll back — exactly what SRC010/UCP032 flag.
    """
    fd = os.open(str(dir_path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fs_recorder():
    """The active FS-op recorder, or None — without importing analysis.

    The witness can only be active if :mod:`repro.analysis.fswitness`
    was imported (its ``fstrace`` context manager is the sole
    activation path), so a ``sys.modules`` probe keeps the off-path
    free of any import cost and breaks the store <- analysis import
    cycle.
    """
    mod = sys.modules.get("repro.analysis.fswitness")
    return None if mod is None else mod.current()


def _lock_witness():
    """The active lock witness, or None (same probe as above)."""
    mod = sys.modules.get("repro.analysis.lockwitness")
    return None if mod is None else mod.current()


class ObjectStore:
    """Persist ``.npt`` objects under a base directory.

    Tracks bytes read/written and accumulates simulated NVMe time, so
    the benchmark harness can report the same save/load cost curves as
    the paper's Figs 11-12 without real datacenter storage.

    Args:
        base_dir: directory all relative paths resolve under.
        nvme: device profile for simulated-time accounting.
        faults: optional fault-injection policy hooked into every IO.
        retry: how injected transient faults are retried.
        durable: fsync commits for power-loss safety; None defers to
            the ``REPRO_DURABLE`` environment default (on).
    """

    def __init__(
        self,
        base_dir: str,
        nvme: NVMeModel = DEFAULT_NVME,
        faults: Optional[FaultPolicy] = None,
        retry: Optional[RetryPolicy] = None,
        durable: Optional[bool] = None,
    ) -> None:
        self.base = pathlib.Path(base_dir)
        self.base.mkdir(parents=True, exist_ok=True)
        self._base_str = os.path.normpath(str(self.base))
        self.nvme = nvme
        self.faults = faults
        self.retry = retry if retry is not None else RetryPolicy()
        self.durable = _durable_default() if durable is None else durable
        self.bytes_written = 0
        self.bytes_read = 0
        self.simulated_write_s = 0.0
        self.simulated_read_s = 0.0

    def _resolve(self, rel_path: str) -> pathlib.Path:
        # lexical containment check (no symlink resolution syscalls:
        # this runs once per atom access on the load hot path)
        normalized = os.path.normpath(os.path.join(self._base_str, rel_path))
        if not (normalized + os.sep).startswith(self._base_str + os.sep):
            raise ValueError(f"path {rel_path!r} escapes the store root")
        return pathlib.Path(normalized)

    def _attempt_with_retry(self, hook, charge_to: str) -> None:
        """Run a fault hook, absorbing transient faults per the policy."""
        attempt = 1
        while True:
            try:
                hook()
                return
            except TransientIOError:
                if attempt >= self.retry.max_attempts:
                    raise
                backoff = self.retry.delay_s(attempt)
                if charge_to == "write":
                    self.simulated_write_s += backoff
                else:
                    self.simulated_read_s += backoff
                attempt += 1

    # --- byte-level primitives (all object IO funnels through these) ---

    def put_bytes(self, rel_path: str, data: bytes, parallel: int = 1) -> int:
        """Atomically commit raw bytes; returns bytes written.

        The write goes to a temp file first and is published with an
        atomic rename — a crash at any point leaves either the previous
        object or the new one visible, never a torn file.  Under
        :attr:`durable` the commit also survives power loss: the temp
        file is fsynced *before* the rename (the publish can never
        become durable ahead of the bytes it names) and the parent
        directory *after* it (the publish itself cannot be rolled
        back).  A write that fails mid-commit cleans up its temp file;
        injected crash faults fire before the write and deliberately
        leave their torn temp behind, as a real crash would.
        """
        path = self._resolve(rel_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        if self.faults is not None:
            self._attempt_with_retry(
                lambda: self.faults.on_write(rel_path, tmp, data), "write"
            )
        recorder = _fs_recorder()
        rel_norm = tmp_rel = ""
        if recorder is not None:
            rel_norm = os.path.relpath(str(path), self._base_str)
            rel_norm = rel_norm.replace(os.sep, "/")
            tmp_rel = os.path.relpath(str(tmp), self._base_str)
            tmp_rel = tmp_rel.replace(os.sep, "/")
            recorder.record_write(self._base_str, tmp_rel, data)
        try:
            with open(tmp, "wb") as fh:
                fh.write(data)
                if self.durable:
                    fh.flush()
                    os.fsync(fh.fileno())
            if self.durable:
                if recorder is not None:
                    recorder.record_fsync(self._base_str, tmp_rel)
                witness = _lock_witness()
                if witness is not None:
                    witness.note_blocking(
                        f"fsync({rel_path})", 0.0, kind="fsync"
                    )
            os.replace(tmp, path)
            if recorder is not None:
                recorder.record_rename(self._base_str, tmp_rel, rel_norm)
            if self.durable:
                _fsync_dir(path.parent)
                if recorder is not None:
                    recorder.record_fsync_dir(
                        self._base_str, posixpath.dirname(rel_norm) or "."
                    )
        except BaseException:
            try:
                tmp.unlink()
                if recorder is not None:
                    recorder.record_unlink(self._base_str, tmp_rel)
            except OSError:
                pass
            raise
        self.bytes_written += len(data)
        self.simulated_write_s += self.nvme.write_time(len(data), parallel)
        if self.faults is not None:
            self.simulated_write_s += self.faults.write_latency_s(
                rel_path, len(data)
            )
        return len(data)

    def read_bytes(self, rel_path: str, parallel: int = 1) -> bytes:
        """Read one object's raw bytes."""
        path = self._resolve(rel_path)
        if not path.is_file():
            raise FileNotFoundError(f"no object at {rel_path!r} in {self.base}")
        if self.faults is not None:
            self._attempt_with_retry(
                lambda: self.faults.on_read(rel_path, path), "read"
            )
        data = path.read_bytes()
        self.bytes_read += len(data)
        self.simulated_read_s += self.nvme.read_time(len(data), parallel)
        if self.faults is not None:
            self.simulated_read_s += self.faults.read_latency_s(
                rel_path, len(data)
            )
        return data

    def read_range(
        self, rel_path: str, offset: int, length: int, parallel: int = 1
    ) -> bytes:
        """``pread``-style windowed read: ``length`` bytes at ``offset``.

        Only the requested bytes are charged to read accounting and the
        simulated NVMe clock — this is the primitive the streaming
        conversion and sliced-atom load pipelines are built on.  A
        range extending past end-of-file is an error (the caller's
        plan referenced bytes the object does not have).
        """
        if offset < 0 or length < 0:
            raise ValueError(
                f"invalid byte range ({offset}, {length}) for {rel_path!r}"
            )
        path = self._resolve(rel_path)
        if not path.is_file():
            raise FileNotFoundError(f"no object at {rel_path!r} in {self.base}")
        if self.faults is not None:
            self._attempt_with_retry(
                lambda: self.faults.on_read(rel_path, path), "read"
            )
        with open(path, "rb") as fh:
            fh.seek(offset)
            data = fh.read(length)
        if len(data) != length:
            raise EOFError(
                f"{rel_path}: range [{offset}, {offset + length}) reads past "
                f"end of file ({offset + len(data)} bytes available)"
            )
        self.bytes_read += length
        self.simulated_read_s += self.nvme.read_time(length, parallel)
        if self.faults is not None:
            self.simulated_read_s += self.faults.read_latency_s(
                rel_path, length
            )
        return data

    def read_ranges(
        self,
        rel_path: str,
        ranges: List[Tuple[int, int]],
        parallel: int = 1,
    ) -> List[bytes]:
        """Batched ``pread``: many ``(offset, length)`` ranges, one open.

        Byte accounting and the simulated NVMe clock are charged
        exactly as if :meth:`read_range` were issued per range; the
        single file open amortizes per-call latency for plans with
        thousands of small ranges (interleaved TP shard slices).
        """
        for offset, length in ranges:
            if offset < 0 or length < 0:
                raise ValueError(
                    f"invalid byte range ({offset}, {length}) for {rel_path!r}"
                )
        path = self._resolve(rel_path)
        if not path.is_file():
            raise FileNotFoundError(f"no object at {rel_path!r} in {self.base}")
        if self.faults is not None:
            self._attempt_with_retry(
                lambda: self.faults.on_read(rel_path, path), "read"
            )
        out: List[bytes] = []
        with open(path, "rb") as fh:
            for offset, length in ranges:
                fh.seek(offset)
                data = fh.read(length)
                if len(data) != length:
                    raise EOFError(
                        f"{rel_path}: range [{offset}, {offset + length}) "
                        f"reads past end of file "
                        f"({offset + len(data)} bytes available)"
                    )
                out.append(data)
                self.bytes_read += length
                self.simulated_read_s += self.nvme.read_time(length, parallel)
                if self.faults is not None:
                    self.simulated_read_s += self.faults.read_latency_s(
                        rel_path, length
                    )
        return out

    def charge_external_read(self, nbytes: int, parallel: int = 1) -> None:
        """Account reads of this store's bytes performed out-of-band.

        Used when a component reads store files through another channel
        (e.g. a digest process pool hashing files directly from disk):
        the bytes really left the device, so they are added to
        ``bytes_read`` and the simulated NVMe clock to keep the store's
        accounting an honest disk-traffic total.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.bytes_read += nbytes
        self.simulated_read_s += self.nvme.read_time(nbytes, parallel)

    def size(self, rel_path: str) -> int:
        """An object's on-disk byte size (no accounting)."""
        path = self._resolve(rel_path)
        if not path.is_file():
            raise FileNotFoundError(f"no object at {rel_path!r} in {self.base}")
        return path.stat().st_size

    # --- object API ---

    def save(self, rel_path: str, obj: Any, parallel: int = 1) -> int:
        """Serialize and write one object; returns bytes written."""
        nbytes, _ = self.save_with_digest(rel_path, obj, parallel=parallel)
        return nbytes

    def save_with_digest(
        self, rel_path: str, obj: Any, parallel: int = 1
    ) -> Tuple[int, str]:
        """Serialize and write one object; returns (bytes, sha256 hex).

        The digest is computed over the exact committed bytes, so a
        manifest entry recorded from it detects any later mutation.
        """
        data = serialize(obj)
        digest = sha256_hex(data)
        self.put_bytes(rel_path, data, parallel=parallel)
        return len(data), digest

    def load(self, rel_path: str, parallel: int = 1) -> Any:
        """Read and deserialize one object."""
        return deserialize(self.read_bytes(rel_path, parallel=parallel))

    def load_header(self, rel_path: str) -> Any:
        """Decode one object from its ``.npt`` header only.

        Tensor leaves come back as
        :class:`~repro.storage.serializer.TensorStub` objects; payload
        bytes are never read from disk, so only the header bytes are
        charged to read accounting.  This is the static analyzer's
        entry point — layout linting over a multi-terabyte checkpoint
        costs a few KB of IO per rank file.
        """
        path = self._resolve(rel_path)
        if not path.is_file():
            raise FileNotFoundError(f"no object at {rel_path!r} in {self.base}")
        if self.faults is not None:
            self._attempt_with_retry(
                lambda: self.faults.on_read(rel_path, path), "read"
            )
        with open(path, "rb") as fh:
            obj = read_npt_header(fh)
            header_bytes = fh.tell()
        self.bytes_read += header_bytes
        self.simulated_read_s += self.nvme.read_time(header_bytes, 1)
        return obj

    def load_index(self, rel_path: str) -> Any:
        """Decode one object from its header, with tensor file offsets.

        Like :meth:`load_header`, but tensor leaves come back as
        :class:`~repro.storage.serializer.TensorIndexEntry` carrying
        each payload's absolute byte offset — the input a read planner
        lowers into exact :meth:`read_range` calls.  Only header bytes
        are charged.
        """
        path = self._resolve(rel_path)
        if not path.is_file():
            raise FileNotFoundError(f"no object at {rel_path!r} in {self.base}")
        if self.faults is not None:
            self._attempt_with_retry(
                lambda: self.faults.on_read(rel_path, path), "read"
            )
        with open(path, "rb") as fh:
            obj = read_npt_index(fh)
            header_bytes = fh.tell()
        self.bytes_read += header_bytes
        self.simulated_read_s += self.nvme.read_time(header_bytes, 1)
        return obj

    def digest(self, rel_path: str) -> str:
        """SHA-256 of an object's current on-disk bytes (no accounting)."""
        path = self._resolve(rel_path)
        if not path.is_file():
            raise FileNotFoundError(f"no object at {rel_path!r} in {self.base}")
        return sha256_hex(path.read_bytes())

    def exists(self, rel_path: str) -> bool:
        """Whether an object exists at the path."""
        return self._resolve(rel_path).is_file()

    def list(self, rel_dir: str = ".") -> List[str]:
        """Relative paths of all objects under a directory, sorted.

        Uncommitted ``*.tmp`` leftovers (from crashes mid-write) are
        never listed — they are not part of any committed state.
        """
        root = self._resolve(rel_dir)
        if not root.is_dir():
            return []
        out = []
        for path in root.rglob("*"):
            if path.is_file() and not path.name.endswith(".tmp"):
                out.append(str(path.relative_to(self.base)))
        return sorted(out)

    def delete(self, rel_path: str) -> None:
        """Remove one object (missing objects are ignored).

        Under :attr:`durable` the parent directory is fsynced so the
        removal itself survives power loss — retention decisions stay
        made.
        """
        path = self._resolve(rel_path)
        if path.is_file():
            path.unlink()
            recorder = _fs_recorder()
            if recorder is not None:
                rel_norm = os.path.relpath(str(path), self._base_str)
                rel_norm = rel_norm.replace(os.sep, "/")
                recorder.record_unlink(self._base_str, rel_norm)
            if self.durable:
                _fsync_dir(path.parent)
                if recorder is not None:
                    recorder.record_fsync_dir(
                        self._base_str, posixpath.dirname(rel_norm) or "."
                    )

    def write_text(self, rel_path: str, text: str) -> None:
        """Atomically write a small text marker file (e.g. ``latest``).

        Goes through the same temp-file + rename commit (and, under
        :attr:`durable`, the same fsync protocol) as object writes:
        advancing the ``latest`` tag is all-or-nothing and cannot
        outlive the manifest it points at.
        """
        self.put_bytes(rel_path, text.encode())

    def read_text(self, rel_path: str) -> str:
        """Read a text marker file."""
        path = self._resolve(rel_path)
        if not path.is_file():
            raise FileNotFoundError(f"no text file at {rel_path!r} in {self.base}")
        return path.read_text()

    def reset_accounting(self) -> None:
        """Zero the byte and simulated-time counters."""
        self.bytes_written = 0
        self.bytes_read = 0
        self.simulated_write_s = 0.0
        self.simulated_read_s = 0.0
