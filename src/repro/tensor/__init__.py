"""Tensor and dtype emulation substrate.

The paper's system manipulates PyTorch tensors in fp32/fp16/bf16.  This
package provides the equivalent primitives over numpy: explicit dtype
emulation (including bfloat16, which numpy lacks natively) and the
flat-buffer views that ZeRO-style optimizers use for their partitioned
parameter groups.
"""

from repro.tensor.dtypes import (
    DType,
    FP32,
    FP16,
    BF16,
    cast,
    bf16_round,
    fp16_round,
    dtype_from_name,
    itemsize,
)
from repro.tensor.flat import (
    FlatBuffer,
    FlatSegment,
    flatten_tensors,
    unflatten_tensors,
    aligned_size,
    pad_to_alignment,
)

__all__ = [
    "DType",
    "FP32",
    "FP16",
    "BF16",
    "cast",
    "bf16_round",
    "fp16_round",
    "dtype_from_name",
    "itemsize",
    "FlatBuffer",
    "FlatSegment",
    "flatten_tensors",
    "unflatten_tensors",
    "aligned_size",
    "pad_to_alignment",
]
