"""Floating-point dtype emulation.

Mixed-precision training (MPT) keeps fp32 master weights in the optimizer
and fp16 or bf16 working copies in the model.  UCP's atom checkpoints always
store the fp32 master values so training can resume under either half
precision (paper §3.1).  numpy has no native bfloat16, so ``BF16`` is
emulated by truncating fp32 mantissas to 8 bits (round-to-nearest-even),
which matches hardware bf16 conversion semantics.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class DType:
    """A training dtype.

    Attributes:
        name: canonical name ("fp32", "fp16", "bf16").
        np_dtype: numpy dtype used for *storage* of values in this dtype.
            bf16 values are stored in float32 arrays whose mantissas have
            been truncated, because numpy cannot represent bf16 natively.
        nbytes: bytes per element on real hardware (used by the storage
            cost model, not by numpy storage).
    """

    name: str
    np_dtype: np.dtype
    nbytes: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType({self.name})"


FP32 = DType("fp32", np.dtype(np.float32), 4)
FP16 = DType("fp16", np.dtype(np.float16), 2)
BF16 = DType("bf16", np.dtype(np.float32), 2)

_BY_NAME = {d.name: d for d in (FP32, FP16, BF16)}


def dtype_from_name(name: str) -> DType:
    """Look up a :class:`DType` by canonical name.

    Raises:
        KeyError: if ``name`` is not one of fp32/fp16/bf16.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown dtype {name!r}; expected one of {sorted(_BY_NAME)}"
        ) from None


def itemsize(dtype: DType) -> int:
    """Bytes per element for the storage cost model."""
    return dtype.nbytes


def bf16_round(values: np.ndarray) -> np.ndarray:
    """Round float32 values to bfloat16 precision (kept in a float32 array).

    Uses round-to-nearest-even on the low 16 mantissa bits, the same rule
    hardware bf16 converters apply.
    """
    f32 = np.ascontiguousarray(values, dtype=np.float32)
    bits = f32.view(np.uint32)
    # round-to-nearest-even: add 0x7FFF + LSB of the surviving mantissa bit
    rounding_bias = 0x7FFF + ((bits >> 16) & 1)
    rounded = (bits + rounding_bias) & np.uint32(0xFFFF0000)
    return rounded.view(np.float32).reshape(values.shape)


def fp16_round(values: np.ndarray) -> np.ndarray:
    """Round values through IEEE fp16 and back to a float16 array.

    Values beyond fp16 range saturate to inf — the overflow behaviour
    real fp16 training exhibits (and why loss scaling exists), so the
    numpy overflow warning is intentional and suppressed.
    """
    with np.errstate(over="ignore"):
        return np.asarray(values, dtype=np.float16)


def cast(values: np.ndarray, dtype: DType) -> np.ndarray:
    """Cast an array to the emulated ``dtype``.

    fp32 -> plain float32; fp16 -> float16; bf16 -> mantissa-truncated
    float32 (numpy storage), matching the numeric behaviour of bf16.
    """
    if dtype is FP32 or dtype.name == "fp32":
        return np.asarray(values, dtype=np.float32)
    if dtype is FP16 or dtype.name == "fp16":
        return fp16_round(values)
    if dtype is BF16 or dtype.name == "bf16":
        return bf16_round(values)
    raise KeyError(f"unknown dtype {dtype!r}")
