"""Flat parameter buffers with alignment padding.

ZeRO-style optimizers flatten a group of parameter tensors into a single
contiguous buffer (DeepSpeed's ``fp32_partitioned_groups_flat``), padding
the total length so it divides evenly across data-parallel ranks and so
each rank's partition starts on a hardware-aligned boundary.  UCP's
``StripPadding`` operation exists precisely because these paddings leak
into distributed checkpoints; this module is the substrate that creates
them in the first place.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

DEFAULT_ALIGNMENT = 8
"""Default element alignment for partition boundaries (NVMe-friendly)."""


def aligned_size(numel: int, alignment: int = DEFAULT_ALIGNMENT) -> int:
    """Smallest multiple of ``alignment`` that is >= ``numel``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return ((numel + alignment - 1) // alignment) * alignment


def pad_to_alignment(
    flat: np.ndarray, alignment: int = DEFAULT_ALIGNMENT
) -> Tuple[np.ndarray, int]:
    """Zero-pad a 1-D array to an aligned length.

    Returns:
        (padded array, number of padding elements appended).
    """
    if flat.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {flat.shape}")
    target = aligned_size(flat.size, alignment)
    pad = target - flat.size
    if pad == 0:
        return flat, 0
    return np.concatenate([flat, np.zeros(pad, dtype=flat.dtype)]), pad


@dataclasses.dataclass(frozen=True)
class FlatSegment:
    """Location of one logical tensor inside a flat buffer.

    Attributes:
        name: parameter name.
        offset: start element offset inside the flat buffer.
        numel: number of elements belonging to the tensor.
        shape: logical (unflattened) shape.
    """

    name: str
    offset: int
    numel: int
    shape: Tuple[int, ...]

    @property
    def end(self) -> int:
        """One past the last element of this segment."""
        return self.offset + self.numel


class FlatBuffer:
    """A contiguous buffer holding a group of named tensors plus padding.

    The buffer layout is ``[tensor_0 | tensor_1 | ... | tensor_n | pad]``
    where ``pad`` brings the total length to a multiple of
    ``alignment * num_partitions`` so the buffer splits into equal-size,
    aligned per-rank partitions.
    """

    def __init__(
        self,
        data: np.ndarray,
        segments: Sequence[FlatSegment],
        padding: int,
        alignment: int = DEFAULT_ALIGNMENT,
    ) -> None:
        if data.ndim != 1:
            raise ValueError("FlatBuffer data must be 1-D")
        self.data = data
        self.segments: List[FlatSegment] = list(segments)
        self.padding = padding
        self.alignment = alignment
        self._by_name: Dict[str, FlatSegment] = {s.name: s for s in self.segments}
        if len(self._by_name) != len(self.segments):
            raise ValueError("duplicate tensor names in flat buffer")

    @property
    def numel(self) -> int:
        """Total buffer length including padding."""
        return int(self.data.size)

    @property
    def payload_numel(self) -> int:
        """Buffer length excluding trailing padding."""
        return self.numel - self.padding

    def segment(self, name: str) -> FlatSegment:
        """Segment metadata for a named tensor."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"tensor {name!r} not in flat buffer "
                f"(have {sorted(self._by_name)})"
            ) from None

    def view(self, name: str) -> np.ndarray:
        """A writable, reshaped view of one tensor inside the buffer."""
        seg = self.segment(name)
        return self.data[seg.offset : seg.end].reshape(seg.shape)

    def read(self, name: str) -> np.ndarray:
        """A copy of one tensor, reshaped to its logical shape."""
        return self.view(name).copy()

    def write(self, name: str, values: np.ndarray) -> None:
        """Overwrite one tensor's slot in the buffer."""
        seg = self.segment(name)
        values = np.asarray(values, dtype=self.data.dtype)
        if values.shape != seg.shape:
            raise ValueError(
                f"shape mismatch writing {name!r}: buffer has {seg.shape}, "
                f"got {values.shape}"
            )
        self.data[seg.offset : seg.end] = values.reshape(-1)

    def partitions(self, num_partitions: int) -> List[np.ndarray]:
        """Split the buffer into equal-size per-rank partition views.

        Raises:
            ValueError: if the buffer length does not divide evenly; call
                sites should have constructed the buffer with
                ``flatten_tensors(..., num_partitions=...)``.
        """
        if self.numel % num_partitions != 0:
            raise ValueError(
                f"buffer of {self.numel} elements does not split into "
                f"{num_partitions} equal partitions"
            )
        size = self.numel // num_partitions
        return [self.data[i * size : (i + 1) * size] for i in range(num_partitions)]

    def partition_size(self, num_partitions: int) -> int:
        """Element count of each partition (must divide evenly)."""
        if self.numel % num_partitions != 0:
            raise ValueError(
                f"buffer of {self.numel} elements does not split into "
                f"{num_partitions} equal partitions"
            )
        return self.numel // num_partitions


def flatten_tensors(
    tensors: Iterable[Tuple[str, np.ndarray]],
    num_partitions: int = 1,
    alignment: int = DEFAULT_ALIGNMENT,
    dtype: np.dtype = np.float32,
) -> FlatBuffer:
    """Flatten named tensors into one aligned, partitionable buffer.

    The total length is padded up to a multiple of
    ``lcm-ish (alignment * num_partitions)`` so that (a) the buffer splits
    into ``num_partitions`` equal partitions and (b) each partition length
    is itself a multiple of ``alignment``.
    """
    items = list(tensors)
    if not items:
        raise ValueError("cannot flatten an empty tensor group")
    if num_partitions <= 0:
        raise ValueError(f"num_partitions must be positive, got {num_partitions}")

    segments: List[FlatSegment] = []
    chunks: List[np.ndarray] = []
    offset = 0
    for name, tensor in items:
        arr = np.asarray(tensor, dtype=dtype)
        segments.append(
            FlatSegment(name=name, offset=offset, numel=arr.size, shape=arr.shape)
        )
        chunks.append(arr.reshape(-1))
        offset += arr.size

    unit = alignment * num_partitions
    total = ((offset + unit - 1) // unit) * unit
    padding = total - offset
    if padding:
        chunks.append(np.zeros(padding, dtype=dtype))
    data = np.concatenate(chunks) if len(chunks) > 1 else chunks[0].copy()
    return FlatBuffer(data=data, segments=segments, padding=padding, alignment=alignment)


def unflatten_tensors(buffer: FlatBuffer) -> Dict[str, np.ndarray]:
    """Recover the named tensors (copies) from a flat buffer."""
    return {seg.name: buffer.read(seg.name) for seg in buffer.segments}
