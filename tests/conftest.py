"""Shared fixtures."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A fixed-seed Generator for test inputs."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(scope="session", autouse=True)
def _session_sanitizer():
    """Run the whole suite under a strict memory sanitizer when asked.

    ``REPRO_SANITIZE=1 pytest`` (the CI sanitizer job) wraps every test
    in one strict :func:`repro.analysis.sanitizer.sanitize` activation:
    any boundary-crossing buffer violation (UCP025-UCP028) raises at the
    point of the offense.  Injection tests that *want* violations push
    their own non-strict sanitizer on the stack — the innermost wins —
    so they keep working under the sanitized run.
    """
    from repro.analysis.sanitizer import enabled_from_env, sanitize

    if not enabled_from_env():
        yield
        return
    with sanitize(strict=True, subject="tier-1 session"):
        yield
