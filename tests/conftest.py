"""Shared fixtures."""

from __future__ import annotations

import os

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A fixed-seed Generator for test inputs."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(scope="session", autouse=True)
def _session_durability():
    """Default the suite to non-durable commits (speed off-switch).

    Durable commits (the production default) fsync the temp file and
    parent directory around every publish — ~7ms per object write,
    which dominates the runtime of suites that write thousands of tiny
    checkpoints.  The suite therefore opts out via ``REPRO_DURABLE=0``;
    durability-specific tests pass ``durable=True`` explicitly, and the
    CI ``crashfs`` job proves the durable protocol end to end.  An
    explicit ``REPRO_DURABLE`` in the environment (e.g. a CI job
    exercising the suite durably) wins over this default.
    """
    os.environ.setdefault("REPRO_DURABLE", "0")
    yield


@pytest.fixture(scope="session", autouse=True)
def _session_sanitizer():
    """Run the whole suite under a strict memory sanitizer when asked.

    ``REPRO_SANITIZE=1 pytest`` (the CI sanitizer job) wraps every test
    in one strict :func:`repro.analysis.sanitizer.sanitize` activation:
    any boundary-crossing buffer violation (UCP025-UCP028) raises at the
    point of the offense.  Injection tests that *want* violations push
    their own non-strict sanitizer on the stack — the innermost wins —
    so they keep working under the sanitized run.
    """
    from repro.analysis.sanitizer import enabled_from_env, sanitize

    if not enabled_from_env():
        yield
        return
    with sanitize(strict=True, subject="tier-1 session"):
        yield


@pytest.fixture(scope="session", autouse=True)
def _session_lockwitness():
    """Run the whole suite under a strict lock witness when asked.

    ``REPRO_LOCKCHECK=1 pytest`` (the CI concurrency job) — or
    ``REPRO_SANITIZE=1``, which implies it — wraps every test in one
    strict :func:`repro.analysis.lockwitness.lockcheck` activation: a
    lock-order cycle, unguarded access to witnessed state, or a lock
    held across over-budget IO (UCP029-UCP031) raises at the point of
    the offense.  Injection tests push their own non-strict witness —
    the innermost wins — so they keep working under the checked run.
    """
    from repro.analysis.lockwitness import enabled_from_env, lockcheck

    if not enabled_from_env():
        yield
        return
    with lockcheck(strict=True, subject="tier-1 session"):
        yield
