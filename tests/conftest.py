"""Shared fixtures."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A fixed-seed Generator for test inputs."""
    return np.random.default_rng(0xC0FFEE)
