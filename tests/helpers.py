"""Test helpers: engine factory and numerical-gradient utilities."""

from __future__ import annotations

import numpy as np

from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.parallel.engine import TrainingEngine


def make_engine(
    model_name: str = "gpt3-mini",
    parallel: ParallelConfig = None,
    seed: int = 7,
    **kwargs,
) -> TrainingEngine:
    """A small engine with fast defaults."""
    defaults = dict(global_batch_size=4, seq_len=16)
    defaults.update(kwargs)
    return TrainingEngine(
        get_config(model_name),
        parallel if parallel is not None else ParallelConfig(),
        seed=seed,
        **defaults,
    )


def numerical_param_grad(
    forward_loss, param_data: np.ndarray, indices, eps: float = 1e-3
) -> np.ndarray:
    """Central-difference gradient of a scalar loss at selected indices.

    Args:
        forward_loss: zero-arg callable returning the scalar loss
            (reads ``param_data`` by reference).
        param_data: the parameter array to perturb (mutated and
            restored).
        indices: flat indices to probe.
    """
    flat = param_data.reshape(-1)
    grads = np.zeros(len(indices), dtype=np.float64)
    for i, idx in enumerate(indices):
        original = flat[idx]
        flat[idx] = original + eps
        loss_plus = forward_loss()
        flat[idx] = original - eps
        loss_minus = forward_loss()
        flat[idx] = original
        grads[i] = (loss_plus - loss_minus) / (2.0 * eps)
    return grads


def assert_grad_close(analytic, numeric, rtol: float = 5e-2, atol: float = 1e-4):
    """Compare analytic vs central-difference gradients (fp32 noise aware)."""
    analytic = np.asarray(analytic, dtype=np.float64)
    numeric = np.asarray(numeric, dtype=np.float64)
    denom = np.maximum(np.abs(numeric), np.abs(analytic))
    mask = denom > atol
    if mask.any():
        rel = np.abs(analytic[mask] - numeric[mask]) / denom[mask]
        assert rel.max() < rtol, (
            f"gradient mismatch: max rel err {rel.max():.4f} "
            f"(analytic={analytic[mask][rel.argmax()]:.6g}, "
            f"numeric={numeric[mask][rel.argmax()]:.6g})"
        )
