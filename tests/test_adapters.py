"""Tests for cross-framework adapters and foreign-state import."""

import numpy as np
import pytest

from repro.core.adapters import (
    ADAPTERS,
    HF_GPT2_ADAPTER,
    LIGHTNING_ADAPTER,
    available_adapters,
    import_foreign_state,
)
from repro.core.errors import UCPIncompatibleError
from repro.core.loader import load_ucp_into_engine
from repro.dist.topology import ParallelConfig
from repro.models import build_model, get_config
from repro.parallel.tp import build_shard_specs

from tests.helpers import make_engine


class TestLightningAdapter:
    def test_prefix_round_trip(self):
        canonical = "blocks.3.ffn.up.weight"
        foreign = LIGHTNING_ADAPTER.foreign_name(canonical)
        assert foreign == "model.blocks.3.ffn.up.weight"
        assert LIGHTNING_ADAPTER.canonical_name(foreign) == canonical

    def test_unprefixed_name_unrecognized(self):
        assert LIGHTNING_ADAPTER.canonical_name("blocks.0.norm1.weight") is None

    def test_translate_state(self, rng):
        state = {"model.final_norm.weight": rng.standard_normal(4).astype(np.float32)}
        out = LIGHTNING_ADAPTER.translate_state(state)
        assert list(out) == ["final_norm.weight"]

    def test_translate_unknown_key_raises(self):
        with pytest.raises(UCPIncompatibleError, match="does not recognize"):
            LIGHTNING_ADAPTER.translate_state({"alien.weight": np.zeros(1)})


class TestHFAdapter:
    @pytest.mark.parametrize(
        "canonical,foreign",
        [
            ("embedding.weight", "transformer.wte.weight"),
            ("pos_embedding.weight", "transformer.wpe.weight"),
            ("blocks.0.attn.qkv.weight", "transformer.h.0.attn.c_attn.weight"),
            ("blocks.7.ffn.down.bias", "transformer.h.7.mlp.c_proj.bias"),
            ("blocks.12.norm2.weight", "transformer.h.12.ln_2.weight"),
            ("final_norm.bias", "transformer.ln_f.bias"),
            ("lm_head", "lm_head.weight"),
        ],
    )
    def test_round_trip(self, canonical, foreign):
        assert HF_GPT2_ADAPTER.foreign_name(canonical) == foreign
        assert HF_GPT2_ADAPTER.canonical_name(foreign) == canonical

    def test_unknown_canonical_raises(self):
        with pytest.raises(UCPIncompatibleError, match="no HF name"):
            HF_GPT2_ADAPTER.foreign_name("blocks.0.ffn.router.proj.weight")

    def test_registry(self):
        assert "huggingface-gpt2" in available_adapters()
        assert ADAPTERS["pytorch-lightning"] is LIGHTNING_ADAPTER


class TestImportForeignState:
    def _foreign_gpt_state(self, seed=12):
        """A GPT state dict under Lightning naming."""
        model = build_model("gpt3-mini", seed=seed)
        return {
            LIGHTNING_ADAPTER.foreign_name(name): values
            for name, values in model.state_dict().items()
        }, model

    def test_import_builds_loadable_ucp(self, tmp_path):
        foreign, src_model = self._foreign_gpt_state()
        ucp_dir = str(tmp_path / "ucp")
        meta = import_foreign_state(
            foreign, LIGHTNING_ADAPTER, get_config("gpt3-mini"), ucp_dir
        )
        assert meta.optimizer_step == 0
        engine = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=0)
        load_ucp_into_engine(engine, ucp_dir)
        src = src_model.state_dict()
        specs = build_shard_specs(get_config("gpt3-mini"))
        for name, values in engine.model.state_dict().items():
            cut = tuple(slice(0, d) for d in specs[name].unpadded_shape)
            assert np.array_equal(values[cut], src[name][cut]), name

    def test_imported_model_trains(self, tmp_path):
        foreign, _ = self._foreign_gpt_state()
        ucp_dir = str(tmp_path / "ucp")
        import_foreign_state(foreign, LIGHTNING_ADAPTER, get_config("gpt3-mini"), ucp_dir)
        engine = make_engine(parallel=ParallelConfig(dp=2))
        load_ucp_into_engine(engine, ucp_dir)
        results = engine.train(5)
        assert results[-1].loss < results[0].loss + 0.1

    def test_missing_parameter_raises(self, tmp_path):
        foreign, _ = self._foreign_gpt_state()
        del foreign["model.final_norm.weight"]
        with pytest.raises(UCPIncompatibleError, match="lacks parameters"):
            import_foreign_state(
                foreign, LIGHTNING_ADAPTER, get_config("gpt3-mini"), str(tmp_path)
            )

    def test_wrong_shape_raises(self, tmp_path):
        foreign, _ = self._foreign_gpt_state()
        foreign["model.final_norm.weight"] = np.zeros(3, dtype=np.float32)
        with pytest.raises(UCPIncompatibleError, match="shape"):
            import_foreign_state(
                foreign, LIGHTNING_ADAPTER, get_config("gpt3-mini"), str(tmp_path)
            )

    def test_accepts_padded_or_unpadded_vocab(self, tmp_path):
        """HF checkpoints carry unpadded vocab tables; ours are padded.
        Both import cleanly."""
        foreign, _ = self._foreign_gpt_state()
        cfg = get_config("gpt3-mini")
        key = "model.embedding.weight"
        foreign[key] = foreign[key][: cfg.vocab_size]  # strip to unpadded
        import_foreign_state(foreign, LIGHTNING_ADAPTER, cfg, str(tmp_path / "u"))


class TestExportWeights:
    def _make_ucp(self, tmp_path):
        from repro.core.convert import ucp_convert
        engine = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=7)
        engine.train(2)
        ckpt, ucp = str(tmp_path / "c"), str(tmp_path / "u")
        engine.save_checkpoint(ckpt)
        ucp_convert(ckpt, ucp)
        return engine, ucp

    def test_canonical_export_matches_masters(self, tmp_path):
        from repro.core.adapters import export_weights
        engine, ucp = self._make_ucp(tmp_path)
        weights = export_weights(ucp)
        masters = engine.zero.consolidated_tensors("fp32")
        for name, values in weights.items():
            spec = engine.layout.spec(name)
            cut = tuple(slice(0, d) for d in spec.unpadded_shape)
            assert np.array_equal(values, masters[name][cut]), name

    def test_export_under_hf_names(self, tmp_path):
        from repro.core.adapters import export_weights
        _, ucp = self._make_ucp(tmp_path)
        weights = export_weights(ucp, adapter=HF_GPT2_ADAPTER)
        assert "transformer.wte.weight" in weights
        assert "transformer.h.0.attn.c_attn.weight" in weights
        assert not any(k.startswith("blocks.") for k in weights)

    def test_export_import_round_trip(self, tmp_path):
        """UCP -> foreign weights -> UCP preserves every weight."""
        from repro.core.adapters import export_weights
        engine, ucp = self._make_ucp(tmp_path)
        foreign = export_weights(ucp, adapter=LIGHTNING_ADAPTER)
        reimported = str(tmp_path / "u2")
        import_foreign_state(
            foreign, LIGHTNING_ADAPTER, engine.model_cfg, reimported
        )
        a = export_weights(ucp)
        b = export_weights(reimported)
        for name in a:
            assert np.array_equal(a[name], b[name]), name
