"""Static checkpoint-layout linter: clean runs and rule-ID regressions."""

from __future__ import annotations

import os

import pytest

from tests.helpers import make_engine
from repro.analysis import LayoutLintError, lint_checkpoint
from repro.analysis.diagnostics import Diagnostic, LintReport, RULES, error
from repro.ckpt.saver import save_distributed_checkpoint
from repro.dist.topology import ParallelConfig
from repro.parallel.layout import RankShardLayout, ShardEntry
from repro.storage.store import ObjectStore


def _save(tmp_path, parallel, **kwargs):
    eng = make_engine(parallel=parallel)
    directory = str(tmp_path / "ckpt")
    info = save_distributed_checkpoint(eng, directory, **kwargs)
    return eng, directory, info


class TestCleanCheckpoints:
    def test_flat_zero1_is_clean(self, tmp_path):
        _, directory, _ = _save(
            tmp_path, ParallelConfig(tp=2, pp=1, dp=2, sp=1, zero_stage=1)
        )
        report = lint_checkpoint(directory)
        assert report.ok
        assert report.diagnostics == []

    def test_zero0_and_zero3_are_clean(self, tmp_path):
        for sub, parallel in (
            ("z0", ParallelConfig(tp=1, pp=1, dp=2, sp=1, zero_stage=0)),
            ("z3", ParallelConfig(tp=1, pp=1, dp=2, sp=1, zero_stage=3)),
        ):
            eng = make_engine(parallel=parallel)
            directory = str(tmp_path / sub)
            save_distributed_checkpoint(eng, directory)
            assert lint_checkpoint(directory).ok

    def test_per_param_layout_is_clean(self, tmp_path):
        _, directory, _ = _save(
            tmp_path,
            ParallelConfig(tp=2, pp=1, dp=1, sp=1, zero_stage=0),
            optimizer_layout="per_param",
        )
        assert lint_checkpoint(directory).ok

    def test_deep_mode_is_clean(self, tmp_path):
        _, directory, _ = _save(
            tmp_path, ParallelConfig(tp=1, pp=2, dp=1, sp=1, zero_stage=1)
        )
        assert lint_checkpoint(directory, deep=True).ok

    def test_linter_never_reads_tensor_payloads(self, tmp_path):
        _, directory, info = _save(
            tmp_path, ParallelConfig(tp=2, pp=1, dp=2, sp=1, zero_stage=1)
        )
        store = ObjectStore(directory)
        assert lint_checkpoint(directory, store=store).ok
        # manifest + job config are full reads; every rank file costs
        # only its header, so total read volume stays far below the
        # checkpoint's size
        assert store.bytes_read < info.total_bytes / 2


class TestNegativeCases:
    def test_deleted_rank_file_is_ucp008(self, tmp_path):
        _, directory, info = _save(
            tmp_path, ParallelConfig(tp=2, pp=1, dp=2, sp=1, zero_stage=1)
        )
        victim = os.path.join(
            directory, info.tag, "zero_dp_rank_1_mp_rank_01_optim_states.npt"
        )
        os.remove(victim)
        report = lint_checkpoint(directory)
        assert not report.ok
        assert [d.rule_id for d in report.errors] == ["UCP008"]
        assert "zero_dp_rank_1_mp_rank_01" in report.errors[0].location

    def test_renamed_rank_file_is_ucp008_plus_unknown(self, tmp_path):
        _, directory, info = _save(
            tmp_path, ParallelConfig(tp=2, pp=1, dp=1, sp=1, zero_stage=1)
        )
        tag_dir = os.path.join(directory, info.tag)
        old = os.path.join(tag_dir, "zero_dp_rank_0_mp_rank_01_optim_states.npt")
        new = os.path.join(tag_dir, "zero_dp_rank_7_mp_rank_01_optim_states.npt")
        os.rename(old, new)
        report = lint_checkpoint(directory)
        assert "UCP008" in [d.rule_id for d in report.errors]
        # the renamed file is on disk but in no manifest: flagged too
        assert "UCP009" in report.rule_ids()

    def test_corrupt_manifest_size_entry_is_ucp010(self, tmp_path):
        _, directory, info = _save(
            tmp_path, ParallelConfig(tp=1, pp=1, dp=2, sp=1, zero_stage=1)
        )
        store = ObjectStore(directory)
        rel = f"{info.tag}/manifest.npt"
        manifest = store.load(rel)
        basename = "zero_dp_rank_0_mp_rank_00_optim_states.npt"
        manifest["files"][basename]["nbytes"] += 1
        store.save(rel, manifest)
        report = lint_checkpoint(directory)
        ucp010 = report.by_rule("UCP010")
        assert ucp010 and ucp010[0].severity == "error"
        assert basename in ucp010[0].location

    def test_digest_mismatch_needs_deep_mode(self, tmp_path):
        _, directory, info = _save(
            tmp_path, ParallelConfig(tp=1, pp=1, dp=1, sp=1, zero_stage=1)
        )
        store = ObjectStore(directory)
        rel = f"{info.tag}/manifest.npt"
        manifest = store.load(rel)
        basename = "zero_dp_rank_0_mp_rank_00_optim_states.npt"
        manifest["files"][basename]["sha256"] = "0" * 64
        store.save(rel, manifest)
        assert lint_checkpoint(directory).ok  # shallow: size still matches
        deep = lint_checkpoint(directory, deep=True)
        assert [d.rule_id for d in deep.errors] == ["UCP010"]

    def test_uncommitted_tag_is_ucp016(self, tmp_path):
        _, directory, info = _save(
            tmp_path, ParallelConfig(tp=1, pp=1, dp=1, sp=1, zero_stage=1)
        )
        os.remove(os.path.join(directory, info.tag, "manifest.npt"))
        report = lint_checkpoint(directory, tag=info.tag)
        assert "UCP016" in [d.rule_id for d in report.errors]

    def test_missing_atom_in_ucp_dir_is_ucp001(self, tmp_path):
        from repro.core.convert import ucp_convert

        _, directory, _ = _save(
            tmp_path, ParallelConfig(tp=2, pp=1, dp=2, sp=1, zero_stage=1)
        )
        ucp_dir = str(tmp_path / "ucp")
        ucp_convert(directory, ucp_dir)
        assert lint_checkpoint(ucp_dir).ok
        store = ObjectStore(ucp_dir)
        victims = [r for r in store.list("atoms") if "final_norm" in r]
        assert victims
        for rel in victims:
            store.delete(rel)
        report = lint_checkpoint(ucp_dir)
        assert "UCP001" in [d.rule_id for d in report.errors]
        assert any("final_norm" in d.location for d in report.errors)


class TestTilingValidation:
    def _entries(self, sizes):
        entries, offset = [], 0
        for i, numel in enumerate(sizes):
            entries.append(ShardEntry(name=f"p{i}", shard_shape=(numel,),
                                      offset=offset))
            offset += numel
        return entries

    def test_sound_layout_has_no_diagnostics(self):
        layout = RankShardLayout(0, 0, 0, self._entries([24, 40]), dp_degree=2)
        assert layout.tiling_diagnostics() == []

    def test_overlapping_entries_are_ucp005(self):
        entries = [
            ShardEntry(name="a", shard_shape=(32,), offset=0),
            ShardEntry(name="b", shard_shape=(32,), offset=16),
        ]
        layout = RankShardLayout(0, 0, 0, entries, dp_degree=1)
        rules = [d.rule_id for d in layout.tiling_diagnostics()]
        assert "UCP005" in rules

    def test_gap_between_entries_is_ucp006(self):
        entries = [
            ShardEntry(name="a", shard_shape=(16,), offset=0),
            ShardEntry(name="b", shard_shape=(16,), offset=48),
        ]
        layout = RankShardLayout(0, 0, 0, entries, dp_degree=1)
        rules = [d.rule_id for d in layout.tiling_diagnostics()]
        assert "UCP006" in rules

    def test_tampered_padding_is_ucp003(self):
        layout = RankShardLayout(0, 0, 0, self._entries([24]), dp_degree=2)
        layout.flat_numel += layout.alignment * 2  # corrupt the round-up
        rules = [d.rule_id for d in layout.tiling_diagnostics()]
        assert "UCP003" in rules

    def test_alignment_padding_regression(self):
        # 24 elements, alignment 32, dp 2 -> flat 64, padding 40; the
        # padded tail must be exactly the round-up to alignment*dp and
        # stay outside every partition slice
        layout = RankShardLayout(0, 0, 0, self._entries([24]), dp_degree=2,
                                 alignment=32)
        assert layout.flat_numel == 64
        assert layout.padding == 40
        assert layout.partition_numel == 32
        assert layout.tiling_diagnostics() == []

    def test_validate_raises_layout_lint_error(self):
        entries = [
            ShardEntry(name="a", shard_shape=(32,), offset=0),
            ShardEntry(name="b", shard_shape=(32,), offset=16),
        ]
        bad = RankShardLayout(0, 0, 0, entries, dp_degree=1)

        eng = make_engine()
        layout = eng.layout
        assert layout.tiling_diagnostics() == []
        layout.validate()  # sound layout: no raise
        coord = layout.mp_coords()[0]
        layout._ranks[coord] = bad
        with pytest.raises(LayoutLintError) as excinfo:
            layout.validate()
        assert "UCP005" in str(excinfo.value)
        assert excinfo.value.report.by_rule("UCP005")

    def test_engine_validates_layout_on_init(self):
        # construction runs validate(); a fresh engine proving clean is
        # the positive half of the invariant
        eng = make_engine(parallel=ParallelConfig(tp=2, pp=2, dp=1, sp=1))
        assert eng.layout.tiling_diagnostics() == []


class TestDiagnosticTypes:
    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("UCP999", "error", "nope")

    def test_rule_catalogue_is_stable(self):
        # rule IDs are API: renaming or renumbering breaks CI gates
        assert RULES["UCP001"] == "missing-atom"
        assert RULES["UCP003"] == "padding-mismatch"
        assert RULES["UCP005"] == "overlapping-partition-slices"
        assert RULES["UCP007"] == "fragment-indivisible"
        assert RULES["UCP014"] == "collective-order-mismatch"

    def test_report_rendering(self):
        report = LintReport(subject="demo")
        report.add(error("UCP001", "gone", location="atoms/w"))
        text = report.render_text()
        assert "1 error" in text
        assert "UCP001" in text and "missing-atom" in text
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["diagnostics"][0]["rule_name"] == "missing-atom"

    def test_raise_if_errors(self):
        clean = LintReport(subject="x")
        assert clean.raise_if_errors() is clean
        bad = LintReport(subject="x", diagnostics=[error("UCP001", "m")])
        with pytest.raises(LayoutLintError):
            bad.raise_if_errors()
