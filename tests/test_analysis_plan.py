"""Interchange pre-flight: static rejection of malformed conversions."""

from __future__ import annotations

import pytest

from tests.helpers import make_engine
from repro.analysis import LayoutLintError, lint_plan
from repro.ckpt.saver import save_distributed_checkpoint
from repro.core.convert import ucp_convert
from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.parallel.tp import build_shard_specs
from repro.storage.store import ObjectStore


class TestLintPlan:
    def test_valid_plan_is_clean(self):
        report = lint_plan(
            get_config("gpt3-mini"),
            ParallelConfig(tp=2, pp=1, dp=2, sp=1, zero_stage=1),
            ParallelConfig(tp=4, pp=1, dp=1, sp=1, zero_stage=1),
        )
        assert report.ok
        assert report.diagnostics == []

    def test_fragment_indivisible_target_is_ucp007(self):
        # gpt3-mini has 4 heads / hidden 64: tp=3 divides neither
        report = lint_plan(
            get_config("gpt3-mini"),
            ParallelConfig(tp=2, pp=1, dp=2, sp=1, zero_stage=1),
            ParallelConfig(tp=3, pp=1, dp=1, sp=1, zero_stage=1),
        )
        assert not report.ok
        assert set(d.rule_id for d in report.errors) == {"UCP007"}
        assert all(d.location.startswith("target:") for d in report.errors)

    def test_indivisible_source_is_also_rejected(self):
        report = lint_plan(
            get_config("gpt3-mini"),
            ParallelConfig(tp=3, pp=1, dp=1, sp=1, zero_stage=1),
            ParallelConfig(tp=2, pp=1, dp=1, sp=1, zero_stage=1),
        )
        assert any(d.location.startswith("source:") for d in report.errors)

    def test_expert_count_mismatch_is_ucp012(self):
        # moe-mini's expert count does not divide across tp=3 EP ranks
        report = lint_plan(
            get_config("moe-mini"),
            ParallelConfig(tp=2, pp=1, dp=1, sp=1, expert_parallel=True),
            ParallelConfig(tp=3, pp=1, dp=1, sp=1, expert_parallel=True),
        )
        assert "UCP012" in [d.rule_id for d in report.errors]

    def test_missing_atom_coverage_is_ucp001(self):
        model = get_config("gpt3-mini")
        full = sorted(build_shard_specs(model))
        partial = [n for n in full if "final_norm" not in n]
        report = lint_plan(
            model,
            ParallelConfig(tp=1, pp=1, dp=1, sp=1),
            ParallelConfig(tp=2, pp=1, dp=1, sp=1),
            atom_names=partial,
        )
        ucp001 = report.by_rule("UCP001")
        assert ucp001 and all(d.severity == "error" for d in ucp001)
        assert any("final_norm" in d.message for d in ucp001)

    def test_expert_layout_change_is_flagged_as_warning(self):
        report = lint_plan(
            get_config("moe-mini"),
            ParallelConfig(tp=2, pp=1, dp=1, sp=1, expert_parallel=True),
            ParallelConfig(tp=2, pp=1, dp=1, sp=1, expert_parallel=False),
        )
        assert report.ok  # warning only: conversion handles re-fragmenting
        assert "UCP013" in report.rule_ids()


class TestConvertPreflight:
    def test_incomplete_manifest_refused_before_any_tensor_read(self, tmp_path):
        eng = make_engine(
            parallel=ParallelConfig(tp=2, pp=1, dp=2, sp=1, zero_stage=1)
        )
        directory = str(tmp_path / "ckpt")
        info = save_distributed_checkpoint(eng, directory)
        store = ObjectStore(directory)
        rel = f"{info.tag}/manifest.npt"
        manifest = store.load(rel)
        # the manifest never recorded one rank's optimizer state: the
        # save was structurally incomplete even though every listed
        # file verifies, so only the layout-derived check can see it
        removed = "zero_dp_rank_1_mp_rank_01_optim_states.npt"
        del manifest["files"][removed]
        store.save(rel, manifest)
        store.delete(f"{info.tag}/{removed}")

        with pytest.raises(LayoutLintError) as excinfo:
            ucp_convert(directory, str(tmp_path / "ucp"))
        assert "UCP008" in str(excinfo.value)
        assert excinfo.value.report.by_rule("UCP008")

    def test_preflight_passes_on_committed_tag(self, tmp_path):
        eng = make_engine(
            parallel=ParallelConfig(tp=2, pp=1, dp=1, sp=1, zero_stage=1)
        )
        directory = str(tmp_path / "ckpt")
        save_distributed_checkpoint(eng, directory)
        report = ucp_convert(directory, str(tmp_path / "ucp"))
        assert report.num_params > 0


class TestFromDescribe:
    def test_roundtrip(self):
        for cfg in (
            ParallelConfig(),
            ParallelConfig(tp=2, pp=2, dp=2, sp=2, zero_stage=2),
            ParallelConfig(tp=4, dp=2, zero_stage=0, expert_parallel=True),
        ):
            assert ParallelConfig.from_describe(cfg.describe()) == cfg

    def test_partial_and_reordered(self):
        cfg = ParallelConfig.from_describe("dp4.tp2")
        assert (cfg.tp, cfg.dp, cfg.pp, cfg.sp) == (2, 4, 1, 1)

    def test_malformed_rejected(self):
        for bad in ("tp2.xq3", "tp2.tp4", "tp", "", "tp2..dp1"):
            with pytest.raises(ValueError):
                ParallelConfig.from_describe(bad)
