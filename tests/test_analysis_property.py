"""Property sweep: the static analyzers agree with the saver, config-wide.

The layout linter re-derives every rank's expected checkpoint contents
symbolically; the saver materializes them.  Sweeping a seeded sample of
(model, tp, pp, dp, sp, zero, optimizer-layout) configurations and
asserting the two agree file-for-file is the strongest evidence that
the linter's model of the layout is the layout.

The byte-provenance checker makes a stronger claim — every data byte of
every saved checkpoint has exactly one non-padding source — so the same
sweep (which includes MoE expert-parallel and sequence-parallel points)
must also prove it, from headers alone, and the interchange sweep must
prove target coverage for reconfigurations the engine itself performs.
"""

from __future__ import annotations

import itertools
import random

from tests.helpers import make_engine
from repro.analysis import (
    analyze_interchange,
    check_source_provenance,
    expected_tag_basenames,
    lint_checkpoint,
)
from repro.ckpt import naming
from repro.ckpt.loader import read_job_config
from repro.ckpt.saver import save_distributed_checkpoint
from repro.core.convert import ucp_convert
from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.storage.store import ObjectStore

MIN_CONFIGS = 50
MAX_WORLD = 16  # keeps the sweep fast while still exercising 3D layouts


def _candidate_configs():
    """Every valid sweep point, deterministically ordered."""
    candidates = []
    for model, tp, pp, dp, sp, zero in itertools.product(
        ("gpt3-mini", "llama-mini", "bloom-mini", "moe-mini"),
        (1, 2, 4),
        (1, 2, 4),
        (1, 2, 4),  # must divide the default global batch of 4
        (1, 2),
        (0, 1, 2, 3),
    ):
        if zero == 3 and (tp > 1 or pp > 1):
            continue  # unsupported composition (matches ParallelConfig)
        if tp * pp * dp * sp > MAX_WORLD:
            continue
        ep = model == "moe-mini" and tp > 1 and zero < 3
        # per_param (Megatron-classic, unpartitioned) only exists at zero0
        use_per_param = zero == 0 and (tp + pp + dp + sp) % 3 == 0
        optimizer_layout = "per_param" if use_per_param else "flat"
        parallel = ParallelConfig(
            tp=tp, pp=pp, dp=dp, sp=sp, zero_stage=zero, expert_parallel=ep
        )
        candidates.append((model, parallel, optimizer_layout))
    return candidates


def test_linter_and_saver_agree_across_seeded_config_sweep(tmp_path):
    candidates = _candidate_configs()
    rng = random.Random(20240805)
    rng.shuffle(candidates)
    sample = candidates[:MIN_CONFIGS]
    assert len(sample) >= MIN_CONFIGS

    for i, (model, parallel, optimizer_layout) in enumerate(sample):
        label = f"{model}/{parallel.describe()}/{optimizer_layout}"
        eng = make_engine(model, parallel=parallel)
        directory = str(tmp_path / f"cfg{i}")
        info = save_distributed_checkpoint(
            eng, directory, optimizer_layout=optimizer_layout
        )

        # atom-for-atom agreement: the file set the linter derives from
        # (ModelConfig, ParallelConfig) alone must equal what the saver
        # actually wrote (the commit manifest records exactly that)
        expected = expected_tag_basenames(
            parallel, eng.layout, optimizer_layout=optimizer_layout
        )
        store = ObjectStore(directory)
        manifest = store.load(f"{info.tag}/{naming.MANIFEST_FILE}")
        actual = set(manifest["files"])
        assert expected == actual, (
            f"{label}: linter expected {sorted(expected ^ actual)} "
            f"to differ from the saved file set"
        )

        report = lint_checkpoint(directory, store=store)
        assert report.ok, f"{label}:\n{report.render_text()}"

        # the stronger theorem: every data byte of this checkpoint has
        # exactly one non-padding source, proven from headers alone
        payload_read = store.bytes_read
        provenance = check_source_provenance(
            store, info.tag, get_config(model), parallel,
            optimizer_layout=optimizer_layout,
        )
        assert provenance.ok, f"{label}:\n{provenance.render_text()}"
        assert store.bytes_read - payload_read < 512 * 1024, (
            f"{label}: provenance read {store.bytes_read - payload_read} "
            f"bytes — header-only contract broken"
        )


# interchange pairs the engine itself performs in the resume tests,
# deliberately spanning MoE expert-parallel and sequence-parallel points
INTERCHANGE_PAIRS = [
    ("gpt3-mini",
     ParallelConfig(tp=2, pp=1, dp=2, sp=1, zero_stage=1),
     ParallelConfig(tp=1, pp=2, dp=2, sp=1, zero_stage=2)),
    ("gpt3-mini",
     ParallelConfig(tp=2, pp=1, dp=1, sp=2, zero_stage=1),
     ParallelConfig(tp=1, pp=1, dp=4, sp=1, zero_stage=1)),
    ("gpt3-mini",
     ParallelConfig(tp=1, pp=1, dp=2, sp=1, zero_stage=1),
     ParallelConfig(tp=2, pp=1, dp=1, sp=2, zero_stage=0)),
    ("moe-mini",
     ParallelConfig(tp=2, pp=1, dp=2, sp=1, zero_stage=1,
                    expert_parallel=True),
     ParallelConfig(tp=1, pp=2, dp=2, sp=1, zero_stage=1)),
    ("moe-mini",
     ParallelConfig(tp=1, pp=2, dp=2, sp=1, zero_stage=2),
     ParallelConfig(tp=2, pp=1, dp=2, sp=1, zero_stage=1,
                    expert_parallel=True)),
    ("llama-mini",
     ParallelConfig(tp=2, pp=2, dp=1, sp=1, zero_stage=1),
     ParallelConfig(tp=1, pp=1, dp=2, sp=2, zero_stage=1)),
]


def test_provenance_proves_every_engine_interchange(tmp_path):
    for i, (model, source, target) in enumerate(INTERCHANGE_PAIRS):
        label = f"{model}: {source.describe()} -> {target.describe()}"
        eng = make_engine(model, parallel=source)
        eng.train(1)
        directory = str(tmp_path / f"pair{i}")
        save_distributed_checkpoint(eng, directory)

        analysis = analyze_interchange(directory, target)
        assert analysis.report.ok, (
            f"{label}:\n{analysis.report.render_text()}"
        )

        # and the engine really performs this interchange: converting
        # and loading on the target topology goes through exactly the
        # dataflow the checker just proved byte-covered
        ucp = str(tmp_path / f"pair{i}-ucp")
        ucp_convert(directory, ucp)
        resumed = make_engine(model, parallel=target)
        resumed.load_universal(ucp)
        job = read_job_config(directory, None)
        assert job["iteration"] == resumed.iteration
