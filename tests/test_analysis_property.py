"""Property sweep: the static linter agrees with the saver, config-wide.

The layout linter re-derives every rank's expected checkpoint contents
symbolically; the saver materializes them.  Sweeping a seeded sample of
(model, tp, pp, dp, sp, zero, optimizer-layout) configurations and
asserting the two agree file-for-file is the strongest evidence that
the linter's model of the layout is the layout.
"""

from __future__ import annotations

import itertools
import random

from tests.helpers import make_engine
from repro.analysis import expected_tag_basenames, lint_checkpoint
from repro.ckpt import naming
from repro.ckpt.saver import save_distributed_checkpoint
from repro.dist.topology import ParallelConfig
from repro.storage.store import ObjectStore

MIN_CONFIGS = 50
MAX_WORLD = 16  # keeps the sweep fast while still exercising 3D layouts


def _candidate_configs():
    """Every valid sweep point, deterministically ordered."""
    candidates = []
    for model, tp, pp, dp, sp, zero in itertools.product(
        ("gpt3-mini", "llama-mini", "bloom-mini", "moe-mini"),
        (1, 2, 4),
        (1, 2, 4),
        (1, 2, 4),  # must divide the default global batch of 4
        (1, 2),
        (0, 1, 2, 3),
    ):
        if zero == 3 and (tp > 1 or pp > 1):
            continue  # unsupported composition (matches ParallelConfig)
        if tp * pp * dp * sp > MAX_WORLD:
            continue
        ep = model == "moe-mini" and tp > 1 and zero < 3
        # per_param (Megatron-classic, unpartitioned) only exists at zero0
        use_per_param = zero == 0 and (tp + pp + dp + sp) % 3 == 0
        optimizer_layout = "per_param" if use_per_param else "flat"
        parallel = ParallelConfig(
            tp=tp, pp=pp, dp=dp, sp=sp, zero_stage=zero, expert_parallel=ep
        )
        candidates.append((model, parallel, optimizer_layout))
    return candidates


def test_linter_and_saver_agree_across_seeded_config_sweep(tmp_path):
    candidates = _candidate_configs()
    rng = random.Random(20240805)
    rng.shuffle(candidates)
    sample = candidates[:MIN_CONFIGS]
    assert len(sample) >= MIN_CONFIGS

    for i, (model, parallel, optimizer_layout) in enumerate(sample):
        label = f"{model}/{parallel.describe()}/{optimizer_layout}"
        eng = make_engine(model, parallel=parallel)
        directory = str(tmp_path / f"cfg{i}")
        info = save_distributed_checkpoint(
            eng, directory, optimizer_layout=optimizer_layout
        )

        # atom-for-atom agreement: the file set the linter derives from
        # (ModelConfig, ParallelConfig) alone must equal what the saver
        # actually wrote (the commit manifest records exactly that)
        expected = expected_tag_basenames(
            parallel, eng.layout, optimizer_layout=optimizer_layout
        )
        store = ObjectStore(directory)
        manifest = store.load(f"{info.tag}/{naming.MANIFEST_FILE}")
        actual = set(manifest["files"])
        assert expected == actual, (
            f"{label}: linter expected {sorted(expected ^ actual)} "
            f"to differ from the saved file set"
        )

        report = lint_checkpoint(directory, store=store)
        assert report.ok, f"{label}:\n{report.render_text()}"
