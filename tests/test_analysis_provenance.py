"""Byte-provenance checker: clean checkpoints pass, corruptions fire.

The provenance analyzer proves three theorems per target tensor from
rank-file *headers* alone — coverage, exclusivity, padding hygiene.
These tests pin both directions: every saver-produced checkpoint (flat,
per-param, ZeRO-3, SP, MoE, and converted UCP directories) verifies
clean, and each class of injected plan corruption raises exactly its
designated UCP017-UCP022 rule.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from tests.helpers import make_engine
from repro.analysis import (
    LintReport,
    analyze_interchange,
    analyze_source,
    check_plan_provenance,
    check_source_provenance,
    check_target_provenance,
    error,
    warning,
)
from repro.ckpt import manifest as manifest_mod
from repro.ckpt import naming
from repro.ckpt.saver import save_distributed_checkpoint
from repro.core.convert import ucp_convert
from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.storage.store import ObjectStore

FLAT_PARALLEL = ParallelConfig(tp=2, pp=1, dp=2, sp=1, zero_stage=1)


def _save(tmp_path, parallel, model="gpt3-mini", optimizer_layout="flat"):
    eng = make_engine(model, parallel=parallel)
    eng.train(1)
    info = save_distributed_checkpoint(
        eng, str(tmp_path), optimizer_layout=optimizer_layout
    )
    return ObjectStore(str(tmp_path)), info.tag, get_config(model)


def _tamper(store, tag, basename, mutate):
    """Modify one committed rank file, keeping its manifest entry valid.

    The manifest refresh matters: without it the tamper would surface as
    a checkpoint-integrity error (PR 1's contract) before the static
    provenance pass ever runs.
    """
    rel = f"{tag}/{basename}"
    payload = store.load(rel)
    mutate(payload)
    store.save(rel, payload)
    manifest_mod.refresh_entry(store, tag, basename)


class TestCleanSources:
    def test_flat_zero1_source_proves_clean(self, tmp_path):
        store, tag, model = _save(tmp_path, FLAT_PARALLEL)
        report = check_source_provenance(store, tag, model, FLAT_PARALLEL)
        assert report.ok, report.render_text()

    def test_per_param_zero0_source_proves_clean(self, tmp_path):
        parallel = ParallelConfig(tp=2, pp=1, dp=2, sp=1, zero_stage=0)
        store, tag, model = _save(
            tmp_path, parallel, optimizer_layout="per_param"
        )
        report = check_source_provenance(
            store, tag, model, parallel, optimizer_layout="per_param"
        )
        assert report.ok, report.render_text()

    def test_zero3_source_proves_clean(self, tmp_path):
        parallel = ParallelConfig(tp=1, pp=1, dp=4, sp=1, zero_stage=3)
        store, tag, model = _save(tmp_path, parallel)
        report = check_source_provenance(store, tag, model, parallel)
        assert report.ok, report.render_text()

    def test_sequence_parallel_source_proves_clean(self, tmp_path):
        parallel = ParallelConfig(tp=2, pp=1, dp=1, sp=2, zero_stage=1)
        store, tag, model = _save(tmp_path, parallel)
        report = check_source_provenance(store, tag, model, parallel)
        assert report.ok, report.render_text()

    def test_expert_parallel_moe_source_proves_clean(self, tmp_path):
        parallel = ParallelConfig(
            tp=2, pp=1, dp=2, sp=1, zero_stage=1, expert_parallel=True
        )
        store, tag, model = _save(tmp_path, parallel, model="moe-mini")
        report = check_source_provenance(store, tag, model, parallel)
        assert report.ok, report.render_text()

    def test_converted_ucp_dir_proves_clean(self, tmp_path):
        _save(tmp_path / "src", FLAT_PARALLEL)
        ucp_convert(str(tmp_path / "src"), str(tmp_path / "ucp"))
        target = ParallelConfig(tp=1, pp=2, dp=2, sp=1, zero_stage=2)
        report = check_plan_provenance(str(tmp_path / "ucp"), target)
        assert report.ok, report.render_text()

    def test_header_only_io_stays_in_kilobytes(self, tmp_path):
        store, tag, model = _save(tmp_path, FLAT_PARALLEL)
        payload_bytes = sum(
            f.stat().st_size for f in (tmp_path / tag).glob("*.npt")
        )
        fresh = ObjectStore(str(tmp_path))
        report = check_source_provenance(fresh, tag, model, FLAT_PARALLEL)
        assert report.ok
        # headers only: orders of magnitude below the payload, and small
        # in absolute terms — this is the "no tensor reads" guarantee
        assert fresh.bytes_read < 256 * 1024
        assert fresh.bytes_read < payload_bytes / 2


class TestTargetTheorems:
    def test_interchange_proves_coverage_for_reconfiguration(self, tmp_path):
        _save(tmp_path, FLAT_PARALLEL)
        target = ParallelConfig(tp=1, pp=2, dp=2, sp=1, zero_stage=2)
        analysis = analyze_interchange(str(tmp_path), target)
        assert analysis.report.ok, analysis.report.render_text()

    def test_explain_renders_byte_chain(self, tmp_path):
        store, tag, model = _save(tmp_path, FLAT_PARALLEL)
        analysis = analyze_source(store, tag, model, FLAT_PARALLEL)
        target = ParallelConfig(tp=1, pp=1, dp=2, sp=1, zero_stage=1)
        chain = analysis.explain(
            "embedding.weight", target,
            pp_stage=0, sp_rank=0, tp_rank=0, dp_rank=0, local_element=5,
        )
        assert "target pp=0" in chain
        assert "consolidated bytes [" in chain
        assert "optim_states.npt::fp32_flat_partition" in chain

    def test_explain_rejects_element_outside_partition(self, tmp_path):
        store, tag, model = _save(tmp_path, FLAT_PARALLEL)
        analysis = analyze_source(store, tag, model, FLAT_PARALLEL)
        with pytest.raises(KeyError):
            analysis.explain(
                "embedding.weight", FLAT_PARALLEL,
                pp_stage=0, sp_rank=0, tp_rank=0, dp_rank=0,
                local_element=10 ** 9,
            )

    def test_missing_param_is_target_gap(self, tmp_path):
        store, tag, model = _save(tmp_path, FLAT_PARALLEL)
        analysis = analyze_source(store, tag, model, FLAT_PARALLEL)
        # erase one param's provenance: every target byte of it is now
        # unsourced and must be reported as a UCP017 chain ending in
        # "<no source byte>"
        victim = analysis.params["embedding.weight"]
        analysis.params["embedding.weight"] = type(victim)(
            name=victim.name, spec=victim.spec, extents=[], data=victim.data
        )
        target = ParallelConfig(tp=1, pp=1, dp=1, sp=1, zero_stage=0)
        report = check_target_provenance(analysis, target)
        gaps = [d for d in report.errors if d.rule_id == "UCP017"]
        assert gaps, report.render_text()
        assert any("<no source byte>" in d.message for d in gaps)


class TestInjectedPlanCorruptions:
    """Each corruption class fires exactly its designated rule."""

    def test_overlapping_fragments_fire_ucp018(self, tmp_path):
        store, tag, model = _save(tmp_path, FLAT_PARALLEL)
        # dp rank 1's file claims partition window 0: every byte it
        # holds is now also claimed by dp rank 0's fragments
        _tamper(
            store, tag, naming.optim_states_name(1, 0),
            lambda p: p["partition_meta"].__setitem__("dp_rank", 0),
        )
        report = check_source_provenance(store, tag, model, FLAT_PARALLEL)
        assert not report.ok
        assert "UCP018" in report.rule_ids()
        overlap = next(d for d in report.errors if d.rule_id == "UCP018")
        assert "bytes [" in overlap.message

    def test_off_by_one_segment_extension_fires_ucp021(self, tmp_path):
        store, tag, model = _save(tmp_path, FLAT_PARALLEL)

        def extend(payload):
            payload["partition_meta"]["segments"][0]["numel"] += 1

        _tamper(store, tag, naming.optim_states_name(0, 0), extend)
        report = check_source_provenance(store, tag, model, FLAT_PARALLEL)
        assert not report.ok
        assert "UCP021" in report.rule_ids()

    def test_off_by_one_segment_shrink_fires_ucp017(self, tmp_path):
        store, tag, model = _save(tmp_path, FLAT_PARALLEL)

        def shrink(payload):
            payload["partition_meta"]["segments"][0]["numel"] -= 1

        _tamper(store, tag, naming.optim_states_name(0, 0), shrink)
        report = check_source_provenance(store, tag, model, FLAT_PARALLEL)
        assert not report.ok
        assert "UCP017" in report.rule_ids()

    def test_padding_recorded_as_data_fires_ucp019(self, tmp_path):
        store, tag, model = _save(tmp_path, FLAT_PARALLEL)

        def widen(payload):
            meta = payload["sharding"]["embedding.weight"]
            assert meta["logical_shape"] != meta["unpadded_shape"]
            meta["unpadded_shape"] = list(meta["logical_shape"])

        _tamper(store, tag, naming.optim_states_name(0, 0), widen)
        report = check_source_provenance(store, tag, model, FLAT_PARALLEL)
        assert not report.ok
        leaks = [d for d in report.errors if d.rule_id == "UCP019"]
        assert leaks, report.render_text()
        assert "structural-padding" in leaks[0].message

    def test_wrong_dtype_fires_ucp020(self, tmp_path):
        store, tag, model = _save(tmp_path, FLAT_PARALLEL)

        def degrade(payload):
            payload["fp32_flat_partition"] = (
                payload["fp32_flat_partition"].astype(np.float64)
            )

        _tamper(store, tag, naming.optim_states_name(0, 0), degrade)
        report = check_source_provenance(store, tag, model, FLAT_PARALLEL)
        assert not report.ok
        assert "UCP020" in report.rule_ids()

    def test_missing_rank_file_fires_ucp022(self, tmp_path):
        store, tag, model = _save(tmp_path, FLAT_PARALLEL)
        (tmp_path / tag / naming.optim_states_name(0, 0)).unlink()
        report = check_source_provenance(store, tag, model, FLAT_PARALLEL)
        assert not report.ok
        assert "UCP022" in report.rule_ids()


class TestDeterministicOrdering:
    """Diagnostic order is a function of content, not insertion order."""

    def _diagnostics(self):
        return [
            error("UCP018", "b overlaps", location="z/param"),
            error("UCP017", "gap two", location="b/param"),
            warning("UCP019", "padding", location="a/file"),
            error("UCP017", "gap one", location="a/param"),
            error("UCP021", "out of bounds", location="a/file"),
        ]

    def test_shuffled_insertion_yields_identical_json(self):
        reference = None
        for seed in range(8):
            diags = self._diagnostics()
            random.Random(seed).shuffle(diags)
            report = LintReport(subject="determinism")
            report.extend(diags)
            text = report.to_json()
            if reference is None:
                reference = text
            assert text == reference

    def test_sorted_diagnostics_key_is_rule_then_location(self):
        report = LintReport(subject="determinism")
        report.extend(reversed(self._diagnostics()))
        ordered = report.sorted_diagnostics()
        keys = [(d.rule_id, d.location) for d in ordered]
        assert keys == sorted(keys)

    def test_provenance_json_is_byte_identical_across_runs(self, tmp_path):
        store, tag, model = _save(tmp_path, FLAT_PARALLEL)
        (tmp_path / tag / naming.optim_states_name(0, 0)).unlink()
        outputs = set()
        for _ in range(3):
            report = check_source_provenance(
                ObjectStore(str(tmp_path)), tag, model, FLAT_PARALLEL
            )
            outputs.add(report.to_json())
        assert len(outputs) == 1
        json.loads(outputs.pop())  # and it is valid JSON


class TestConvertPreflight:
    def test_convert_refuses_corrupt_plan_with_provenance_rule(self, tmp_path):
        from repro.analysis import LayoutLintError

        store, tag, _ = _save(tmp_path / "src", FLAT_PARALLEL)

        def widen(payload):
            meta = payload["sharding"]["embedding.weight"]
            meta["unpadded_shape"] = list(meta["logical_shape"])

        _tamper(store, tag, naming.optim_states_name(0, 0), widen)
        with pytest.raises(LayoutLintError) as exc:
            ucp_convert(str(tmp_path / "src"), str(tmp_path / "ucp"))
        assert "UCP019" in str(exc.value)

    def test_convert_provenance_gate_can_be_disabled(self, tmp_path):
        store, tag, _ = _save(tmp_path / "src", FLAT_PARALLEL)

        def widen(payload):
            meta = payload["sharding"]["embedding.weight"]
            meta["unpadded_shape"] = list(meta["logical_shape"])

        _tamper(store, tag, naming.optim_states_name(0, 0), widen)
        # provenance=False restores the pre-PR structural-only gate; the
        # corruption above is structurally well-formed, so this converts
        report = ucp_convert(
            str(tmp_path / "src"), str(tmp_path / "ucp"), provenance=False
        )
        assert report.num_params > 0
