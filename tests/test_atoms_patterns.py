"""Tests for atom checkpoints and the UCP pattern language."""

import numpy as np
import pytest

from repro.core.atom import AtomCheckpoint, AtomStore
from repro.core.errors import AtomMissingError, PatternMatchError, UCPFormatError
from repro.core.patterns import PatternProgram, PatternRule, program_for_config
from repro.models import get_config
from repro.parallel.sharding import FusedSectionsFragment, VocabFragment
from repro.parallel.tp import (
    PATTERN_FRAGMENT,
    PATTERN_REPLICATED,
    PATTERN_TO_AVERAGE,
    build_shard_specs,
)


def make_atom(rng, name="layer.weight", shape=(4, 3)):
    return AtomCheckpoint(
        name=name,
        states={
            "fp32": rng.standard_normal(shape).astype(np.float32),
            "exp_avg": rng.standard_normal(shape).astype(np.float32),
            "exp_avg_sq": np.abs(rng.standard_normal(shape)).astype(np.float32),
        },
        spec={"pattern": PATTERN_REPLICATED},
    )


class TestAtomCheckpoint:
    def test_shape_and_bytes(self, rng):
        atom = make_atom(rng)
        assert atom.shape == (4, 3)
        assert atom.nbytes == 3 * 12 * 4

    def test_inconsistent_state_shapes_raise(self, rng):
        with pytest.raises(UCPFormatError, match="disagree"):
            AtomCheckpoint(
                name="x",
                states={
                    "fp32": np.zeros((2, 2), dtype=np.float32),
                    "exp_avg": np.zeros((3,), dtype=np.float32),
                },
                spec={},
            )


class TestAtomStore:
    def test_write_read_round_trip(self, tmp_path, rng):
        store = AtomStore(str(tmp_path))
        atom = make_atom(rng, name="blocks.0.attn.qkv.weight")
        store.write(atom)
        loaded = store.read("blocks.0.attn.qkv.weight")
        for kind in ("fp32", "exp_avg", "exp_avg_sq"):
            assert np.array_equal(loaded.states[kind], atom.states[kind])

    def test_one_file_per_state(self, tmp_path, rng):
        store = AtomStore(str(tmp_path))
        store.write(make_atom(rng, name="p"))
        files = store.store.list("atoms/p")
        assert sorted(f.rsplit("/", 1)[1] for f in files) == [
            "atom_meta.npt", "exp_avg.npt", "exp_avg_sq.npt", "fp32.npt",
        ]

    def test_list_atoms(self, tmp_path, rng):
        store = AtomStore(str(tmp_path))
        store.write(make_atom(rng, name="b.weight"))
        store.write(make_atom(rng, name="a.weight"))
        assert store.list_atoms() == ["a.weight", "b.weight"]

    def test_missing_atom_raises(self, tmp_path):
        store = AtomStore(str(tmp_path))
        with pytest.raises(AtomMissingError):
            store.read_state("ghost", "fp32")
        with pytest.raises(AtomMissingError):
            store.read_meta("ghost")

    def test_has_atom(self, tmp_path, rng):
        store = AtomStore(str(tmp_path))
        assert not store.has_atom("p")
        store.write(make_atom(rng, name="p"))
        assert store.has_atom("p")

    def test_illegal_name_rejected(self, tmp_path):
        store = AtomStore(str(tmp_path))
        with pytest.raises(UCPFormatError, match="illegal"):
            store.read_state("", "fp32")
        with pytest.raises(UCPFormatError, match="illegal"):
            store.read_state("/etc/passwd", "fp32")


class TestPatternRule:
    def test_regex_matching(self):
        rule = PatternRule(r"\.norm\d\.", PATTERN_REPLICATED)
        assert rule.matches("blocks.0.norm1.weight")
        assert not rule.matches("blocks.0.attn.qkv.weight")

    def test_fragment_requires_fragmenter(self):
        with pytest.raises(ValueError, match="needs a fragmenter"):
            PatternRule(r".*", PATTERN_FRAGMENT)

    def test_unknown_pattern_raises(self):
        with pytest.raises(ValueError, match="unknown pattern"):
            PatternRule(r".*", "mystery_params")

    def test_serialization_round_trip(self):
        rule = PatternRule(
            r"\.qkv\.", PATTERN_FRAGMENT,
            FusedSectionsFragment(dim=0, section_sizes=(8, 4, 4)),
            label="qkv",
        )
        clone = PatternRule.from_dict(rule.to_dict())
        assert clone == rule


class TestPatternProgram:
    def test_first_match_wins(self):
        program = PatternProgram([
            PatternRule(r"special", PATTERN_TO_AVERAGE),
            PatternRule(r".*", PATTERN_REPLICATED),
        ])
        assert program.match("special.weight").pattern == PATTERN_TO_AVERAGE
        assert program.match("other.weight").pattern == PATTERN_REPLICATED

    def test_unmatched_raises(self):
        program = PatternProgram([PatternRule(r"^exact$", PATTERN_REPLICATED)])
        with pytest.raises(PatternMatchError, match="no pattern rule"):
            program.match("something.else")

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError, match="at least one rule"):
            PatternProgram([])

    def test_resolve_spec_builds_shapes(self):
        program = PatternProgram([
            PatternRule(r"emb", PATTERN_FRAGMENT, VocabFragment(logical_rows=11)),
        ])
        spec = program.resolve_spec("emb.weight", (16, 4))
        assert spec.logical_shape == (16, 4)
        assert spec.unpadded_shape == (11, 4)  # derived from VocabFragment
        assert spec.has_padding

    def test_serialization_round_trip(self):
        program = program_for_config(get_config("moe-mini"))
        clone = PatternProgram.from_dict(program.to_dict())
        assert [r.to_dict() for r in clone.rules] == [r.to_dict() for r in program.rules]


class TestProgramForConfig:
    @pytest.mark.parametrize(
        "name", ["gpt3-mini", "llama-mini", "bloom-mini", "moe-mini"]
    )
    def test_program_agrees_with_engine_specs(self, name):
        """The declaratively-written program must classify every
        parameter exactly as the engine's sharding rules do."""
        cfg = get_config(name)
        program = program_for_config(cfg)
        for pname, spec in build_shard_specs(cfg).items():
            resolved = program.resolve_spec(
                pname, spec.logical_shape, spec.unpadded_shape
            )
            assert resolved.pattern == spec.pattern, pname
            assert resolved.fragmenter == spec.fragmenter, pname
            assert resolved.unpadded_shape == spec.unpadded_shape, pname

    def test_average_replicas_flag_switches_norms(self):
        cfg = get_config("gpt3-mini")
        program = program_for_config(cfg, average_replicas=True)
        assert program.match("blocks.0.norm1.weight").pattern == PATTERN_TO_AVERAGE
        # non-norm params unchanged
        assert program.match("blocks.0.attn.out.bias").pattern == PATTERN_REPLICATED

    def test_gqa_sections_reflect_head_geometry(self):
        cfg = get_config("llama-mini")  # 4 q heads, 2 kv heads, head_dim 16
        program = program_for_config(cfg)
        rule = program.match("blocks.0.attn.qkv.weight")
        assert rule.fragmenter.section_sizes == (64, 32, 32)
