"""Gradient-checked tests for causal attention (MHA, GQA, RoPE)."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.attention import CausalSelfAttention

from tests.helpers import assert_grad_close, numerical_param_grad


def make_attention(rng, hidden=8, heads=4, kv_heads=4, rope=False, bias=False):
    head_dim = hidden // heads
    qkv_out = (heads + 2 * kv_heads) * head_dim
    return CausalSelfAttention(
        hidden=hidden,
        num_heads=heads,
        num_kv_heads=kv_heads,
        qkv_weight=rng.standard_normal((qkv_out, hidden)).astype(np.float32) * 0.3,
        out_weight=rng.standard_normal((hidden, heads * head_dim)).astype(np.float32) * 0.3,
        use_rope=rope,
        qkv_bias=rng.standard_normal(qkv_out).astype(np.float32) * 0.1 if bias else None,
        out_bias=rng.standard_normal(hidden).astype(np.float32) * 0.1 if bias else None,
    )


class TestConstruction:
    def test_indivisible_hidden_raises(self, rng):
        with pytest.raises(ValueError, match="divisible"):
            make_attention(rng, hidden=10, heads=4)

    def test_indivisible_kv_heads_raises(self, rng):
        with pytest.raises(ValueError, match="kv_heads"):
            make_attention(rng, heads=4, kv_heads=3)

    def test_gqa_sizes(self, rng):
        attn = make_attention(rng, hidden=8, heads=4, kv_heads=2)
        assert attn.q_size == 8 and attn.kv_size == 4
        assert attn.group_size == 2


class TestCausality:
    def test_future_tokens_do_not_affect_past_outputs(self, rng):
        attn = make_attention(rng)
        x = rng.standard_normal((1, 6, 8)).astype(np.float32)
        base = attn(x)
        changed = x.copy()
        changed[0, 4] += 10.0  # perturb a late token
        out = attn(changed)
        assert np.allclose(out[0, :4], base[0, :4], atol=1e-5)
        assert not np.allclose(out[0, 4:], base[0, 4:], atol=1e-3)

    def test_first_token_attends_only_to_itself(self, rng):
        attn = make_attention(rng)
        x = rng.standard_normal((1, 5, 8)).astype(np.float32)
        out_full = attn(x)[0, 0]
        out_single = attn(x[:, :1])[0, 0]
        assert np.allclose(out_full, out_single, atol=1e-5)


class TestGQAEquivalence:
    def test_gqa_with_equal_heads_matches_mha(self, rng):
        """num_kv_heads == num_heads must reduce to standard MHA."""
        seed = np.random.default_rng(3)
        x = seed.standard_normal((2, 4, 8)).astype(np.float32)
        a = make_attention(np.random.default_rng(5), heads=4, kv_heads=4)
        b = CausalSelfAttention(
            hidden=8, num_heads=4, num_kv_heads=4,
            qkv_weight=a.qkv.weight.data.copy(),
            out_weight=a.out.weight.data.copy(),
        )
        assert np.allclose(a(x), b(x), atol=1e-6)

    def test_gqa_kv_sharing(self, rng):
        """With one KV head, all query heads see identical K/V."""
        attn = make_attention(rng, hidden=8, heads=4, kv_heads=1)
        x = rng.standard_normal((1, 3, 8)).astype(np.float32)
        out = attn(x)
        assert out.shape == (1, 3, 8)
        assert np.isfinite(out).all()


class TestGradients:
    @pytest.mark.parametrize(
        "heads,kv_heads,rope,bias",
        [(4, 4, False, False), (4, 2, False, False), (4, 2, True, False),
         (4, 4, True, False), (4, 4, False, True)],
    )
    def test_qkv_weight_gradient(self, rng, heads, kv_heads, rope, bias):
        attn = make_attention(rng, heads=heads, kv_heads=kv_heads, rope=rope, bias=bias)
        x = rng.standard_normal((1, 4, 8)).astype(np.float32)
        probe = rng.standard_normal((1, 4, 8)).astype(np.float32)
        attn(x)
        attn.backward(probe)
        analytic = attn.qkv.weight.grad
        indices = [0, 13, 37, attn.qkv.weight.numel - 1]
        numeric = numerical_param_grad(
            lambda: float((attn(x) * probe).sum()),
            attn.qkv.weight.data,
            indices,
        )
        assert_grad_close(analytic.reshape(-1)[indices], numeric, rtol=8e-2)

    def test_out_weight_gradient(self, rng):
        attn = make_attention(rng, heads=4, kv_heads=2, rope=True)
        x = rng.standard_normal((1, 4, 8)).astype(np.float32)
        probe = rng.standard_normal((1, 4, 8)).astype(np.float32)
        attn(x)
        attn.backward(probe)
        indices = [0, 17, 63]
        numeric = numerical_param_grad(
            lambda: float((attn(x) * probe).sum()),
            attn.out.weight.data,
            indices,
        )
        assert_grad_close(attn.out.weight.grad.reshape(-1)[indices], numeric, rtol=8e-2)

    def test_input_gradient(self, rng):
        attn = make_attention(rng, heads=4, kv_heads=2)
        x = rng.standard_normal((1, 4, 8)).astype(np.float32)
        probe = rng.standard_normal((1, 4, 8)).astype(np.float32)
        attn(x)
        grad_in = attn.backward(probe)
        eps = 1e-3
        for idx in [(0, 0, 0), (0, 2, 5), (0, 3, 7)]:
            plus = x.copy(); plus[idx] += eps
            minus = x.copy(); minus[idx] -= eps
            numeric = float(((attn(plus) - attn(minus)) * probe).sum()) / (2 * eps)
            assert np.isclose(grad_in[idx], numeric, atol=3e-2), idx

    def test_backward_before_forward_raises(self, rng):
        attn = make_attention(rng)
        with pytest.raises(RuntimeError, match="before forward"):
            attn.backward(np.zeros((1, 2, 8), dtype=np.float32))


class TestALiBi:
    def test_slopes_are_geometric(self):
        slopes = F.alibi_slopes(8)
        ratios = slopes[1:] / slopes[:-1]
        assert np.allclose(ratios, ratios[0], atol=1e-6)
        assert slopes[0] == np.float32(2.0 ** -1.0)

    def test_bias_zero_on_diagonal_negative_below(self):
        bias = F.alibi_bias(5, 4)
        assert bias.shape == (4, 5, 5)
        for h in range(4):
            assert np.allclose(np.diag(bias[h]), 0.0)
        assert (bias[:, 2, 0] < bias[:, 2, 1]).all()  # farther = more penalty

    def test_alibi_and_rope_mutually_exclusive(self, rng):
        with pytest.raises(ValueError, match="mutually exclusive"):
            CausalSelfAttention(
                hidden=8, num_heads=4, num_kv_heads=4,
                qkv_weight=rng.standard_normal((24, 8)).astype(np.float32),
                out_weight=rng.standard_normal((8, 8)).astype(np.float32),
                use_rope=True, use_alibi=True,
            )

    def test_alibi_reweights_distant_tokens(self, rng):
        """ALiBi changes attention everywhere except position 0 (which
        only sees itself, where the bias is zero)."""
        def build(alibi):
            gen = np.random.default_rng(3)
            return CausalSelfAttention(
                hidden=8, num_heads=4, num_kv_heads=4,
                qkv_weight=gen.standard_normal((24, 8)).astype(np.float32) * 0.3,
                out_weight=gen.standard_normal((8, 8)).astype(np.float32) * 0.3,
                use_alibi=alibi,
            )

        x = rng.standard_normal((1, 5, 8)).astype(np.float32)
        plain = build(False)(x)
        biased = build(True)(x)
        assert np.allclose(plain[0, 0], biased[0, 0], atol=1e-6)
        assert not np.allclose(plain[0, 1:], biased[0, 1:], atol=1e-5)

    def test_alibi_gradients_still_correct(self, rng):
        attn = CausalSelfAttention(
            hidden=8, num_heads=4, num_kv_heads=4,
            qkv_weight=rng.standard_normal((24, 8)).astype(np.float32) * 0.3,
            out_weight=rng.standard_normal((8, 8)).astype(np.float32) * 0.3,
            use_alibi=True,
        )
        x = rng.standard_normal((1, 4, 8)).astype(np.float32)
        probe = rng.standard_normal((1, 4, 8)).astype(np.float32)
        attn(x)
        attn.backward(probe)
        indices = [0, 50, 150]
        numeric = numerical_param_grad(
            lambda: float((attn(x) * probe).sum()),
            attn.qkv.weight.data,
            indices,
        )
        assert_grad_close(attn.qkv.weight.grad.reshape(-1)[indices], numeric, rtol=8e-2)

    def test_bloom_mini_uses_alibi(self):
        from repro.models import build_model, get_config

        assert get_config("bloom-mini").positional == "alibi"
        model = build_model("bloom-mini")
        assert model.pos_embedding is None
        assert model.blocks[0].attn.use_alibi
        # no positional parameters in the checkpointed state
        assert not any("pos_embedding" in n for n, _ in model.named_parameters())
