"""Tests for distributed checkpoint save/load and the consolidated baseline."""

import numpy as np
import pytest

from repro.ckpt import naming
from repro.ckpt.consolidated import (
    load_consolidated_checkpoint,
    save_consolidated_checkpoint,
)
from repro.ckpt.errors import CheckpointIncompatibleError, CheckpointNotFoundError
from repro.ckpt.loader import read_job_config
from repro.dist.topology import ParallelConfig
from repro.storage.store import ObjectStore

from tests.helpers import make_engine


class TestNaming:
    def test_tag_round_trip(self):
        assert naming.step_from_tag(naming.tag_for_step(1234)) == 1234

    def test_malformed_tag_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            naming.step_from_tag("step_100")

    def test_negative_values_raise(self):
        with pytest.raises(ValueError):
            naming.tag_for_step(-1)
        with pytest.raises(ValueError):
            naming.model_states_name(-1)
        with pytest.raises(ValueError):
            naming.optim_states_name(-1, 0)

    def test_file_name_formats(self):
        assert naming.model_states_name(3) == "mp_rank_03_model_states.npt"
        assert naming.optim_states_name(1, 2) == "zero_dp_rank_1_mp_rank_02_optim_states.npt"
        assert naming.zero3_model_states_name(0) == "zero3_dp_rank_0_model_states.npt"


class TestSave:
    def test_file_inventory_matches_topology(self, tmp_path):
        engine = make_engine(parallel=ParallelConfig(tp=2, pp=2, dp=2))
        engine.train(2)
        info = engine.save_checkpoint(str(tmp_path))
        # 4 mp ranks x (1 model file + 2 optim files) + job config
        assert len(info.files) == 1 + 4 * 3
        assert info.tag == "global_step2"

    def test_zero0_saves_single_optim_file_per_mp_rank(self, tmp_path):
        engine = make_engine(parallel=ParallelConfig(dp=2, zero_stage=0))
        engine.train(1)
        info = engine.save_checkpoint(str(tmp_path))
        optim_files = [f for f in info.files if "optim_states" in f]
        assert len(optim_files) == 1  # only dp rank 0 writes

    def test_zero3_saves_flat_param_partitions(self, tmp_path):
        engine = make_engine(parallel=ParallelConfig(dp=2, zero_stage=3))
        engine.train(1)
        info = engine.save_checkpoint(str(tmp_path))
        assert any("zero3_dp_rank_0_model_states" in f for f in info.files)
        assert any("zero3_dp_rank_1_model_states" in f for f in info.files)
        assert not any(f.endswith("mp_rank_00_model_states.npt") for f in info.files)

    def test_latest_marker_updated(self, tmp_path):
        engine = make_engine()
        engine.train(1)
        engine.save_checkpoint(str(tmp_path))
        engine.train(1)
        engine.save_checkpoint(str(tmp_path))
        store = ObjectStore(str(tmp_path))
        assert store.read_text("latest") == "global_step2"

    def test_job_config_contents(self, tmp_path):
        engine = make_engine(parallel=ParallelConfig(tp=2, dp=2))
        engine.train(1)
        engine.save_checkpoint(str(tmp_path))
        job = read_job_config(str(tmp_path))
        assert job["iteration"] == 1
        assert job["parallel_config"]["tp"] == 2
        assert job["model_config"]["name"] == "gpt3-mini"


class TestLoad:
    def test_bit_exact_resume_same_topology(self, tmp_path):
        src = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=7)
        src.train(3)
        src.save_checkpoint(str(tmp_path))
        continued = [r.loss for r in src.train(3)]

        dst = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=99)
        dst.load_checkpoint(str(tmp_path))
        resumed = [r.loss for r in dst.train(3)]
        assert continued == resumed  # bit-exact

    def test_iteration_restored(self, tmp_path):
        src = make_engine()
        src.train(5)
        src.save_checkpoint(str(tmp_path))
        dst = make_engine()
        dst.load_checkpoint(str(tmp_path))
        assert dst.iteration == 5

    def test_specific_tag_loadable(self, tmp_path):
        src = make_engine()
        src.train(2)
        src.save_checkpoint(str(tmp_path))
        src.train(2)
        src.save_checkpoint(str(tmp_path))
        dst = make_engine()
        dst.load_checkpoint(str(tmp_path), tag="global_step2")
        assert dst.iteration == 2

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointNotFoundError, match="latest"):
            make_engine().load_checkpoint(str(tmp_path))

    @pytest.mark.parametrize(
        "target",
        [
            ParallelConfig(tp=1, pp=1, dp=1),
            ParallelConfig(tp=1, pp=2, dp=2),   # same world size, different shape
            ParallelConfig(tp=2, pp=2, dp=1),   # fewer ranks
            ParallelConfig(tp=2, pp=1, dp=4),
        ],
    )
    def test_fig1_topology_change_fails(self, tmp_path, target):
        """The paper's Fig 1: strict loaders reject any topology change."""
        src = make_engine(parallel=ParallelConfig(tp=2, pp=1, dp=2))
        src.train(1)
        src.save_checkpoint(str(tmp_path))
        dst = make_engine(parallel=target)
        with pytest.raises(CheckpointIncompatibleError):
            dst.load_checkpoint(str(tmp_path))

    def test_zero_stage_change_fails(self, tmp_path):
        src = make_engine(parallel=ParallelConfig(dp=2, zero_stage=1))
        src.train(1)
        src.save_checkpoint(str(tmp_path))
        dst = make_engine(parallel=ParallelConfig(dp=2, zero_stage=2))
        with pytest.raises(CheckpointIncompatibleError, match="ZeRO stage"):
            dst.load_checkpoint(str(tmp_path))

    def test_different_model_fails(self, tmp_path):
        src = make_engine("gpt3-mini")
        src.train(1)
        src.save_checkpoint(str(tmp_path))
        dst = make_engine("llama-mini")
        with pytest.raises(CheckpointIncompatibleError, match="model"):
            dst.load_checkpoint(str(tmp_path))


class TestConsolidatedBaseline:
    def test_cross_topology_load_works(self, tmp_path):
        src = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=7)
        src.train(3)
        save_consolidated_checkpoint(src, str(tmp_path))
        continued = [r.loss for r in src.train(2)]

        dst = make_engine(parallel=ParallelConfig(pp=2), seed=0)
        load_consolidated_checkpoint(dst, str(tmp_path))
        resumed = [r.loss for r in dst.train(2)]
        assert np.allclose(continued, resumed, atol=1e-6)

    def test_gather_traffic_accounted(self, tmp_path):
        engine = make_engine(parallel=ParallelConfig(tp=2, dp=2))
        engine.train(1)
        before = engine.cluster.tracker.count("all_gather")
        save_consolidated_checkpoint(engine, str(tmp_path))
        assert engine.cluster.tracker.count("all_gather") == before + 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointNotFoundError):
            load_consolidated_checkpoint(make_engine(), str(tmp_path))

    def test_wrong_model_raises(self, tmp_path):
        src = make_engine("gpt3-mini")
        src.train(1)
        save_consolidated_checkpoint(src, str(tmp_path))
        with pytest.raises(CheckpointIncompatibleError):
            load_consolidated_checkpoint(make_engine("llama-mini"), str(tmp_path))

    def test_single_file_larger_than_any_rank_file(self, tmp_path):
        """The scaling argument: consolidation concentrates all bytes."""
        engine = make_engine(parallel=ParallelConfig(tp=2, dp=2))
        engine.train(1)
        consolidated_bytes = save_consolidated_checkpoint(engine, str(tmp_path))
        info = engine.save_checkpoint(str(tmp_path / "dist"))
        per_file = info.total_bytes / len(info.files)
        assert consolidated_bytes > per_file
