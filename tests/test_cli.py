"""Tests for the repro CLI."""

import pytest

from repro.cli import main
from repro.dist.topology import ParallelConfig
from repro.storage.store import ObjectStore

from tests.helpers import make_engine


@pytest.fixture
def checkpoint(tmp_path):
    engine = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=7)
    engine.train(2)
    ckpt = str(tmp_path / "ckpt")
    engine.save_checkpoint(ckpt)
    return ckpt, tmp_path


class TestModels:
    def test_lists_registry(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt3-350m" in out
        assert "mixtral-moe-42b" in out


class TestInspect:
    def test_distributed_checkpoint(self, checkpoint, capsys):
        ckpt, _ = checkpoint
        assert main(["inspect", ckpt]) == 0
        out = capsys.readouterr().out
        assert "distributed checkpoint" in out
        assert "tp2.pp1.dp2" in out
        assert "global_step2" in out

    def test_ucp_directory(self, checkpoint, capsys):
        ckpt, tmp = checkpoint
        ucp = str(tmp / "ucp")
        assert main(["convert", ckpt, ucp]) == 0
        capsys.readouterr()
        assert main(["inspect", ucp]) == 0
        out = capsys.readouterr().out
        assert "UCP checkpoint" in out
        assert "atoms" in out

    def test_missing_directory_fails(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path / "nope")]) == 1
        assert "unrecognized" in capsys.readouterr().out


class TestConvert:
    def test_basic_conversion(self, checkpoint, capsys):
        ckpt, tmp = checkpoint
        assert main(["convert", ckpt, str(tmp / "ucp")]) == 0
        out = capsys.readouterr().out
        assert "atoms" in out
        assert ObjectStore(str(tmp / "ucp")).exists("ucp_meta.npt")

    def test_worker_flag(self, checkpoint, capsys):
        ckpt, tmp = checkpoint
        assert main(["convert", ckpt, str(tmp / "ucp"), "--workers", "4"]) == 0

    def test_bad_tag_fails(self, checkpoint, capsys):
        ckpt, tmp = checkpoint
        code = main(["convert", ckpt, str(tmp / "u"), "--tag", "global_step99"])
        assert code == 1


class TestPlan:
    def test_downsize_plan(self, checkpoint, capsys):
        ckpt, _ = checkpoint
        assert main(["plan", ckpt, "--world", "2"]) == 0
        out = capsys.readouterr().out
        assert "source:  tp2.pp1.dp2" in out
        assert "target:" in out
        assert "convert to UCP" in out

    def test_same_size_plan_keeps_topology(self, checkpoint, capsys):
        ckpt, _ = checkpoint
        assert main(["plan", ckpt, "--world", "4"]) == 0
        out = capsys.readouterr().out
        assert "loads directly" in out

    def test_impossible_plan_fails(self, checkpoint, capsys):
        ckpt, _ = checkpoint
        assert main(["plan", ckpt, "--world", "0"]) == 1

    def test_awkward_batch_still_finds_a_plan(self, checkpoint, capsys):
        """A prime batch size forces dp=1 but a plan always exists."""
        ckpt, _ = checkpoint
        assert main(["plan", ckpt, "--world", "4", "--batch", "7"]) == 0
        assert "dp1" in capsys.readouterr().out


class TestLintPlan:
    def test_provenance_pass_on_clean_plan(self, checkpoint, capsys):
        ckpt, _ = checkpoint
        code = main([
            "lint-plan", "--source", ckpt,
            "--target", "tp1.pp2.dp2.sp1.zero2", "--provenance",
        ])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_provenance_flags_corrupt_plan(self, checkpoint, capsys):
        from repro.ckpt import manifest as manifest_mod
        from repro.ckpt import naming

        ckpt, _ = checkpoint
        store = ObjectStore(ckpt)
        basename = naming.optim_states_name(0, 0)
        rel = f"global_step2/{basename}"
        payload = store.load(rel)
        meta = payload["sharding"]["embedding.weight"]
        meta["unpadded_shape"] = list(meta["logical_shape"])
        store.save(rel, payload)
        manifest_mod.refresh_entry(store, "global_step2", basename)

        code = main([
            "lint-plan", "--source", ckpt,
            "--target", "tp1.pp2.dp2.sp1.zero2", "--provenance",
        ])
        assert code == 1
        assert "UCP019" in capsys.readouterr().out

    def test_provenance_json_is_deterministic(self, checkpoint, capsys):
        ckpt, _ = checkpoint
        argv = [
            "lint-plan", "--source", ckpt,
            "--target", "tp1.pp2.dp2.sp1.zero2",
            "--provenance", "--format", "json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first


class TestLintTrace:
    @pytest.fixture
    def traced_checkpoint(self, tmp_path):
        from repro.ckpt.saver import save_distributed_checkpoint

        engine = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=7)
        engine.train(1)
        ckpt = str(tmp_path / "ckpt")
        save_distributed_checkpoint(engine, ckpt, dump_trace=True)
        return ckpt

    def test_clean_trace_from_directory(self, traced_checkpoint, capsys):
        assert main(["lint-trace", traced_checkpoint]) == 0
        assert "clean" in capsys.readouterr().out

    def test_clean_trace_from_file_json(self, traced_checkpoint, capsys):
        import json

        trace = f"{traced_checkpoint}/global_step1/collective_trace.npt"
        assert main(["lint-trace", trace, "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True

    def test_corrupt_trace_flags_ucp023(self, traced_checkpoint, capsys):
        from repro.analysis import CollectiveTraceRecorder

        store = ObjectStore(traced_checkpoint)
        rel = "global_step1/collective_trace.npt"
        rec = CollectiveTraceRecorder.from_payload(store.load(rel))
        ranks = rec.group_members["world"]
        rec.record("barrier:save:torn:enter", "world", ranks, 0, dtype="none")
        store.save(rel, rec.to_payload())

        assert main(["lint-trace", traced_checkpoint]) == 1
        assert "UCP023" in capsys.readouterr().out

    def test_missing_trace_fails_with_hint(self, checkpoint, capsys):
        ckpt, _ = checkpoint  # saved without dump_trace
        assert main(["lint-trace", ckpt]) == 1
        assert "dump_trace=True" in capsys.readouterr().err


class TestVerify:
    def test_clean_checkpoint_passes(self, checkpoint, capsys):
        ckpt, _ = checkpoint
        assert main(["verify", ckpt]) == 0
        out = capsys.readouterr().out
        assert "CORRUPT" not in out

    def test_corrupt_file_detected(self, checkpoint, capsys):
        ckpt, _ = checkpoint
        store = ObjectStore(ckpt)
        rel = next(f for f in store.list() if "optim_states" in f)
        path = store.base / rel
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF
        path.write_bytes(bytes(data))
        assert main(["verify", ckpt]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_empty_directory_fails(self, tmp_path, capsys):
        assert main(["verify", str(tmp_path)]) == 1


class TestSupervise:
    ARGS = [
        "supervise",
        "--model", "gpt3-mini",
        "--topology", "tp1.pp1.dp2.zero1",
        "--steps", "6",
        "--save-every", "2",
        "--batch", "4",
        "--kill", "3:step:1",
    ]

    def test_text_report(self, tmp_path, capsys):
        rc = main(self.ARGS + ["--workdir", str(tmp_path / "job")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "supervised run" in out
        assert "recovery 0: step@step3" in out
        assert "continuity" in out

    def test_json_report_structure(self, tmp_path, capsys):
        import json

        rc = main(
            self.ARGS
            + ["--workdir", str(tmp_path / "job"), "--format", "json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["horizon"] == 6
        assert payload["useful_steps"] == 6
        assert 0 < payload["goodput"] <= 1
        assert payload["interruptions"] == 1
        assert payload["lost_committed_tags"] == []
        assert payload["continuity"]["ok"] is True
        (event,) = payload["events"]
        assert event["trigger_phase"] == "step"
        assert event["timings"]["total_s"] > 0

    def test_report_file_matches_stdout_json(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        rc = main(
            self.ARGS
            + [
                "--workdir", str(tmp_path / "job"),
                "--format", "json",
                "--report", str(report_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert report_path.read_text().strip() == out.strip()

    def test_json_is_deterministic_across_runs(self, tmp_path, capsys):
        outs = []
        for sub in ("a", "b"):
            rc = main(
                self.ARGS
                + ["--workdir", str(tmp_path / sub), "--format", "json"]
            )
            assert rc == 0
            outs.append(capsys.readouterr().out)
        assert outs[0] == outs[1]

    def test_no_golden_skips_continuity(self, tmp_path, capsys):
        import json

        rc = main(
            self.ARGS
            + [
                "--workdir", str(tmp_path / "job"),
                "--format", "json",
                "--no-golden",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["continuity"] is None

    def test_kill_and_kill_seed_are_exclusive(self, tmp_path, capsys):
        rc = main(
            self.ARGS
            + ["--workdir", str(tmp_path / "job"), "--kill-seed", "3"]
        )
        assert rc == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_kill_seed_random_schedule(self, tmp_path, capsys):
        import json

        rc = main([
            "supervise",
            "--model", "gpt3-mini",
            "--topology", "tp1.pp1.dp2.zero1",
            "--steps", "6",
            "--save-every", "2",
            "--batch", "4",
            "--kill-seed", "3",
            "--workdir", str(tmp_path / "job"),
            "--format", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["interruptions"] >= 1

    def test_misaligned_save_kill_warns(self, tmp_path, capsys):
        rc = main([
            "supervise",
            "--model", "gpt3-mini",
            "--topology", "tp1.pp1.dp2.zero1",
            "--steps", "4",
            "--save-every", "4",
            "--batch", "4",
            "--kill", "6:save-post:1",
            "--no-golden",
            "--workdir", str(tmp_path / "job"),
        ])
        assert rc == 0  # the kill never fires; the run just completes
        err = capsys.readouterr().err
        assert "will never trigger" in err


class TestExplore:
    def test_list_scenarios(self, capsys):
        assert main(["explore", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("blockcache", "convert-verify", "convert-w2",
                     "inmemory"):
            assert name in out

    def test_missing_scenario_fails(self, capsys):
        assert main(["explore"]) == 1
        assert "scenario name is required" in capsys.readouterr().err

    def test_unknown_scenario_fails(self, capsys):
        assert main(["explore", "nope"]) == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_blockcache_exhaustive_json(self, capsys, tmp_path):
        import json

        report_path = tmp_path / "interleave.json"
        rc = main([
            "explore", "blockcache",
            "--require-exhaustive",
            "--report", str(report_path),
            "--format", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exhaustive"] is True
        assert payload["counterexamples"] == []
        # the artifact matches stdout byte for byte
        assert report_path.read_text() == json.dumps(
            payload, indent=2, sort_keys=True
        ) + "\n"

    def test_capped_run_fails_require_exhaustive(self, capsys):
        rc = main([
            "explore", "blockcache",
            "--schedules", "3",
            "--require-exhaustive",
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert "bounded" in err and "--require-exhaustive" in err

    def test_schedule_replay(self, capsys, tmp_path):
        import json

        sched = tmp_path / "sched.json"
        sched.write_text("[1]")
        rc = main([
            "explore", "blockcache",
            "--schedule", str(sched),
            "--format", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["replayed"] == [1]
        assert payload["exhaustive"] is False
