"""Collective-ordering race detector: clean traces and injected races."""

from __future__ import annotations

import pytest

from tests.helpers import make_engine
from repro.analysis.collective_trace import (
    CollectiveTraceRecorder,
    TraceEvent,
    check_collective_ordering,
    numel_class,
)
from repro.ckpt.saver import save_distributed_checkpoint
from repro.dist.topology import ParallelConfig


class TestNumelClass:
    def test_power_of_two_buckets(self):
        assert numel_class(0) == 0
        assert numel_class(1) == 1
        assert numel_class(1023) == 10
        assert numel_class(1024) == 11

    def test_same_bucket_tolerates_wobble(self):
        # uneven final microbatch: 1000 vs 900 elements still match
        assert numel_class(1000) == numel_class(900)
        # halved message size lands in a different bucket
        assert numel_class(1024) != numel_class(512)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            numel_class(-1)


class TestRecorder:
    def test_group_wide_record_hits_every_member(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 2), 64)
        assert rec.events_of(0) == rec.events_of(2)
        assert rec.num_events == 2
        assert rec.group_members["dp:0"] == (0, 2)

    def test_events_of_filters_by_group(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 1), 64)
        rec.record("broadcast", "tp:0", (0, 1), 32)
        assert [e.op for e in rec.events_of(0, "tp:0")] == ["broadcast"]

    def test_reset(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 1), 64)
        rec.reset()
        assert rec.num_events == 0
        assert rec.group_members == {}

    def test_event_render(self):
        event = TraceEvent("all_reduce", "dp:0", "float32", 14)
        assert "all_reduce" in event.render()
        assert "~2^14" in event.render()


class TestCheckOrdering:
    def test_empty_trace_is_clean(self):
        assert check_collective_ordering(CollectiveTraceRecorder()).ok

    def test_identical_sequences_are_clean(self):
        rec = CollectiveTraceRecorder()
        for _ in range(3):
            rec.record("all_reduce", "dp:0", (0, 1, 2), 4096)
        assert check_collective_ordering(rec).ok

    def test_injected_divergent_op_is_ucp014(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 1), 4096)
        # rank 1 alone takes a data-dependent branch and gathers instead
        rec.record("all_gather", "dp:0", (0, 1), 4096, rank=1)
        rec.record("all_reduce", "dp:0", (0, 1), 4096, rank=0)
        report = check_collective_ordering(rec)
        assert not report.ok
        assert [d.rule_id for d in report.errors] == ["UCP014"]
        message = report.errors[0].message
        assert "#1" in message  # first divergent index
        assert "all_gather" in message and "all_reduce" in message
        assert report.errors[0].location == "group dp:0"

    def test_length_mismatch_is_ucp014(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 1), 4096)
        rec.record("all_reduce", "dp:0", (0, 1), 4096, rank=0)
        report = check_collective_ordering(rec)
        assert not report.ok
        assert "2 calls" in report.errors[0].message
        assert "1" in report.errors[0].message

    def test_size_disagreement_is_ucp014(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 1), 4096, rank=0)
        rec.record("all_reduce", "dp:0", (0, 1), 1024, rank=1)
        report = check_collective_ordering(rec)
        assert "UCP014" in [d.rule_id for d in report.errors]


class TestEngineTrace:
    def test_training_and_save_trace_is_race_free(self, tmp_path):
        eng = make_engine(
            parallel=ParallelConfig(tp=2, pp=1, dp=2, sp=1, zero_stage=1)
        )
        eng.train(2)
        save_distributed_checkpoint(eng, str(tmp_path / "ckpt"))
        trace = eng.cluster.trace
        assert trace.num_events > 0
        assert check_collective_ordering(trace).ok

    def test_save_path_emits_commit_barriers(self, tmp_path):
        eng = make_engine(parallel=ParallelConfig(dp=2))
        eng.train(1)
        info = save_distributed_checkpoint(eng, str(tmp_path / "ckpt"))
        ops = [e.op for e in eng.cluster.trace.events_of(0, "world")]
        assert f"barrier:save:{info.tag}:enter" in ops
        assert f"barrier:save:{info.tag}:commit" in ops
        # the commit barrier comes last: no rank may see the latest
        # pointer move before every peer finished writing
        assert ops.index(f"barrier:save:{info.tag}:enter") < ops.index(
            f"barrier:save:{info.tag}:commit"
        )

    def test_dp_gradient_reduction_is_traced(self):
        eng = make_engine(
            parallel=ParallelConfig(tp=1, pp=1, dp=2, sp=1, zero_stage=1)
        )
        eng.train(1)
        trace = eng.cluster.trace
        dp_groups = [g for g in trace.group_members if g.startswith("dp")]
        assert dp_groups
        ops = [
            e.op
            for g in dp_groups
            for e in trace.events_of(trace.group_members[g][0], g)
        ]
        assert "all_reduce" in ops  # gradient reduction
        assert "all_gather" in ops  # zero1 parameter re-gather

    def test_injected_rank_divergence_is_caught(self):
        eng = make_engine(
            parallel=ParallelConfig(tp=1, pp=1, dp=2, sp=1, zero_stage=1)
        )
        eng.train(1)
        trace = eng.cluster.trace
        group = next(g for g in trace.group_members if g.startswith("dp"))
        members = trace.group_members[group]
        trace.record("all_reduce", group, members, 4096, rank=members[0])
        report = check_collective_ordering(trace)
        assert not report.ok
        assert any(d.rule_id == "UCP014" for d in report.errors)
