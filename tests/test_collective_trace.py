"""Collective-trace analyzers: ordering races, argument lint, and the
vector-clock happens-before replay (deadlocks, critical sections)."""

from __future__ import annotations

import numpy as np
import pytest

from tests.helpers import make_engine
from repro.analysis.collective_trace import (
    CollectiveTraceRecorder,
    TraceEvent,
    check_collective_args,
    check_collective_ordering,
    check_happens_before,
    check_trace,
    numel_class,
    simulate_happens_before,
)
from repro.ckpt.saver import save_distributed_checkpoint
from repro.core.convert import ucp_convert
from repro.dist.topology import ParallelConfig


class TestNumelClass:
    def test_power_of_two_buckets(self):
        assert numel_class(0) == 0
        assert numel_class(1) == 1
        assert numel_class(1023) == 10
        assert numel_class(1024) == 11

    def test_same_bucket_tolerates_wobble(self):
        # uneven final microbatch: 1000 vs 900 elements still match
        assert numel_class(1000) == numel_class(900)
        # halved message size lands in a different bucket
        assert numel_class(1024) != numel_class(512)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            numel_class(-1)


class TestRecorder:
    def test_group_wide_record_hits_every_member(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 2), 64)
        assert rec.events_of(0) == rec.events_of(2)
        assert rec.num_events == 2
        assert rec.group_members["dp:0"] == (0, 2)

    def test_events_of_filters_by_group(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 1), 64)
        rec.record("broadcast", "tp:0", (0, 1), 32)
        assert [e.op for e in rec.events_of(0, "tp:0")] == ["broadcast"]

    def test_reset(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 1), 64)
        rec.reset()
        assert rec.num_events == 0
        assert rec.group_members == {}

    def test_event_render(self):
        event = TraceEvent("all_reduce", "dp:0", "float32", 14)
        assert "all_reduce" in event.render()
        assert "~2^14" in event.render()


class TestCheckOrdering:
    def test_empty_trace_is_clean(self):
        assert check_collective_ordering(CollectiveTraceRecorder()).ok

    def test_identical_sequences_are_clean(self):
        rec = CollectiveTraceRecorder()
        for _ in range(3):
            rec.record("all_reduce", "dp:0", (0, 1, 2), 4096)
        assert check_collective_ordering(rec).ok

    def test_injected_divergent_op_is_ucp014(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 1), 4096)
        # rank 1 alone takes a data-dependent branch and gathers instead
        rec.record("all_gather", "dp:0", (0, 1), 4096, rank=1)
        rec.record("all_reduce", "dp:0", (0, 1), 4096, rank=0)
        report = check_collective_ordering(rec)
        assert not report.ok
        assert [d.rule_id for d in report.errors] == ["UCP014"]
        message = report.errors[0].message
        assert "#1" in message  # first divergent index
        assert "all_gather" in message and "all_reduce" in message
        assert report.errors[0].location == "group dp:0"

    def test_length_mismatch_is_ucp014(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 1), 4096)
        rec.record("all_reduce", "dp:0", (0, 1), 4096, rank=0)
        report = check_collective_ordering(rec)
        assert not report.ok
        assert "2 calls" in report.errors[0].message
        assert "1" in report.errors[0].message

    def test_size_disagreement_is_ucp014(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 1), 4096, rank=0)
        rec.record("all_reduce", "dp:0", (0, 1), 1024, rank=1)
        report = check_collective_ordering(rec)
        assert "UCP014" in [d.rule_id for d in report.errors]


class TestEngineTrace:
    def test_training_and_save_trace_is_race_free(self, tmp_path):
        eng = make_engine(
            parallel=ParallelConfig(tp=2, pp=1, dp=2, sp=1, zero_stage=1)
        )
        eng.train(2)
        save_distributed_checkpoint(eng, str(tmp_path / "ckpt"))
        trace = eng.cluster.trace
        assert trace.num_events > 0
        assert check_collective_ordering(trace).ok

    def test_save_path_emits_commit_barriers(self, tmp_path):
        eng = make_engine(parallel=ParallelConfig(dp=2))
        eng.train(1)
        info = save_distributed_checkpoint(eng, str(tmp_path / "ckpt"))
        ops = [e.op for e in eng.cluster.trace.events_of(0, "world")]
        assert f"barrier:save:{info.tag}:enter" in ops
        assert f"barrier:save:{info.tag}:commit" in ops
        # the commit barrier comes last: no rank may see the latest
        # pointer move before every peer finished writing
        assert ops.index(f"barrier:save:{info.tag}:enter") < ops.index(
            f"barrier:save:{info.tag}:commit"
        )

    def test_dp_gradient_reduction_is_traced(self):
        eng = make_engine(
            parallel=ParallelConfig(tp=1, pp=1, dp=2, sp=1, zero_stage=1)
        )
        eng.train(1)
        trace = eng.cluster.trace
        dp_groups = [g for g in trace.group_members if g.startswith("dp")]
        assert dp_groups
        ops = [
            e.op
            for g in dp_groups
            for e in trace.events_of(trace.group_members[g][0], g)
        ]
        assert "all_reduce" in ops  # gradient reduction
        assert "all_gather" in ops  # zero1 parameter re-gather

    def test_injected_rank_divergence_is_caught(self):
        eng = make_engine(
            parallel=ParallelConfig(tp=1, pp=1, dp=2, sp=1, zero_stage=1)
        )
        eng.train(1)
        trace = eng.cluster.trace
        group = next(g for g in trace.group_members if g.startswith("dp"))
        members = trace.group_members[group]
        trace.record("all_reduce", group, members, 4096, rank=members[0])
        report = check_collective_ordering(trace)
        assert not report.ok
        assert any(d.rule_id == "UCP014" for d in report.errors)


class TestPayloadRoundTrip:
    def test_to_payload_from_payload_preserves_events(self):
        rec = CollectiveTraceRecorder()
        rec.record(
            "all_reduce", "dp:0", (0, 1), 64, shape=(8, 8), reduce_op="sum"
        )
        rec.record("broadcast", "tp:0", (0, 1), 32)
        back = CollectiveTraceRecorder.from_payload(rec.to_payload())
        assert back.num_events == rec.num_events
        assert back.group_members == rec.group_members
        assert back.events_of(0) == rec.events_of(0)
        assert back.events_of(0)[0].shape == (8, 8)
        assert back.events_of(0)[0].reduce_op == "sum"

    def test_old_four_field_records_still_decode(self):
        # traces dumped before shape/reduce_op existed remain readable
        event = TraceEvent.from_record(["all_reduce", "dp:0", "float32", 14])
        assert event.signature == ("all_reduce", "dp:0", "float32", 14)
        assert event.shape == ()
        assert event.reduce_op == ""

    def test_record_call_derives_per_member_metadata(self):
        rec = CollectiveTraceRecorder()
        rec.record_call(
            "all_reduce", "dp:0", (0, 1),
            [np.zeros((4, 8), dtype=np.float32),
             np.zeros((4, 8), dtype=np.float32)],
            reduce_op="sum",
        )
        for rank in (0, 1):
            (event,) = rec.events_of(rank)
            assert event.shape == (4, 8)
            assert event.reduce_op == "sum"
            assert event.dtype == "float32"


class TestArgumentLint:
    def test_matching_args_are_clean(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 1), 64, shape=(8, 8),
                   reduce_op="sum")
        assert check_collective_args(rec).ok

    def test_shape_mismatch_is_ucp024(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 1), 64, shape=(8, 8), rank=0)
        rec.record("all_reduce", "dp:0", (0, 1), 64, shape=(64,), rank=1)
        report = check_collective_args(rec)
        assert not report.ok
        assert [d.rule_id for d in report.errors] == ["UCP024"]
        assert "(8, 8)" in report.errors[0].message

    def test_reduce_op_mismatch_is_ucp024(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 1), 64, reduce_op="sum", rank=0)
        rec.record("all_reduce", "dp:0", (0, 1), 64, reduce_op="max", rank=1)
        report = check_collective_args(rec)
        assert "UCP024" in report.rule_ids()
        assert "sum" in report.errors[0].message
        assert "max" in report.errors[0].message

    def test_dtype_mismatch_is_ucp024(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 1), 64, dtype="float32", rank=0)
        rec.record("all_reduce", "dp:0", (0, 1), 64, dtype="float16", rank=1)
        assert "UCP024" in check_collective_args(rec).rule_ids()

    def test_all_gather_shape_wobble_tolerated(self):
        # gather inputs legitimately differ in leading dim (uneven last
        # microbatch); only strictly shape-coupled ops are linted
        rec = CollectiveTraceRecorder()
        rec.record("all_gather", "dp:0", (0, 1), 64, shape=(8, 8), rank=0)
        rec.record("all_gather", "dp:0", (0, 1), 64, shape=(7, 8), rank=1)
        assert check_collective_args(rec).ok


class TestHappensBefore:
    def test_clean_replay_fires_everything(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 1), 64)
        rec.record("all_reduce", "tp:0", (0, 1), 32)
        result = simulate_happens_before(rec)
        assert result.completed
        assert len(result.fired) == 2
        # vector clocks are monotone along each rank's program order
        first, second = result.fired
        assert all(a <= b for a, b in zip(first.clock, second.clock))

    def test_cyclic_waits_fire_ucp023_with_cycle(self):
        rec = CollectiveTraceRecorder()
        # ranks enter the two groups in opposite orders: classic deadlock
        rec.record("all_reduce", "g1", (0, 1), 64, rank=0)
        rec.record("all_reduce", "g2", (0, 1), 64, rank=0)
        rec.record("all_reduce", "g2", (0, 1), 64, rank=1)
        rec.record("all_reduce", "g1", (0, 1), 64, rank=1)
        report = check_happens_before(rec)
        assert not report.ok
        assert "UCP023" in report.rule_ids()
        message = report.errors[0].message
        assert "deadlock cycle" in message
        assert "rank 0 waits for rank 1" in message

    def test_dropped_commit_barrier_fires_ucp023(self):
        rec = CollectiveTraceRecorder()
        rec.record("barrier:save:global_step2:enter", "world", (0, 1), 0,
                   dtype="none")
        report = check_happens_before(rec)
        assert not report.ok
        unclosed = [d for d in report.errors if "never committed" in d.message]
        assert unclosed and unclosed[0].rule_id == "UCP023"

    def test_single_rank_dropping_barrier_deadlocks(self):
        rec = CollectiveTraceRecorder()
        rec.record("barrier:save:global_step2:enter", "world", (0, 1), 0,
                   dtype="none")
        rec.record("barrier:save:global_step2:commit", "world", (0, 1), 0,
                   dtype="none", rank=0)
        report = check_happens_before(rec)
        assert not report.ok
        assert "UCP023" in report.rule_ids()
        assert any("dropped collective" in d.message for d in report.errors)

    def test_save_convert_section_overlap_fires_ucp023(self):
        rec = CollectiveTraceRecorder()
        # disjoint subgroups, so no barrier orders save against convert:
        # the sections are concurrent under happens-before
        rec.record("barrier:save:global_step2:enter", "dp:0,1", (0, 1), 0,
                   dtype="none")
        rec.record("barrier:convert:global_step2:enter", "dp:2,3", (2, 3), 0,
                   dtype="none")
        rec.record("barrier:save:global_step2:commit", "dp:0,1", (0, 1), 0,
                   dtype="none")
        rec.record("barrier:convert:global_step2:commit", "dp:2,3", (2, 3), 0,
                   dtype="none")
        report = check_happens_before(rec)
        assert not report.ok
        overlaps = [d for d in report.errors if "overlap" in d.message]
        assert overlaps and overlaps[0].rule_id == "UCP023"
        assert "save:global_step2" in overlaps[0].message
        assert "convert:global_step2" in overlaps[0].message

    def test_serialized_save_then_convert_is_clean(self, tmp_path):
        # the real pipeline: barriers on the shared world group order the
        # convert section strictly after the save section
        eng = make_engine(
            parallel=ParallelConfig(tp=2, pp=1, dp=2, sp=1, zero_stage=1)
        )
        eng.train(1)
        save_distributed_checkpoint(eng, str(tmp_path / "ckpt"))
        ucp_convert(
            str(tmp_path / "ckpt"), str(tmp_path / "ucp"),
            cluster=eng.cluster,
        )
        report = check_trace(eng.cluster.trace)
        assert report.ok, report.render_text()
        ops = [e.op for e in eng.cluster.trace.events_of(0, "world")]
        assert any(o.startswith("barrier:convert:") for o in ops)

    def test_check_trace_composes_all_three_analyzers(self):
        rec = CollectiveTraceRecorder()
        rec.record("all_reduce", "dp:0", (0, 1), 64, reduce_op="sum", rank=0)
        rec.record("all_reduce", "dp:0", (0, 1), 64, reduce_op="max", rank=1)
        rec.record("barrier:save:t:enter", "world", (0, 1), 0, dtype="none")
        report = check_trace(rec)
        assert not report.ok
        assert {"UCP023", "UCP024"} <= set(report.rule_ids())


class TestTraceDump:
    def test_dump_trace_sidecar_verifies_clean(self, tmp_path):
        from repro.ckpt import naming
        from repro.storage.store import ObjectStore

        eng = make_engine(parallel=ParallelConfig(dp=2, zero_stage=1))
        eng.train(1)
        info = save_distributed_checkpoint(
            eng, str(tmp_path), dump_trace=True
        )
        store = ObjectStore(str(tmp_path))
        rel = f"{info.tag}/{naming.TRACE_FILE}"
        assert store.exists(rel)
        rec = CollectiveTraceRecorder.from_payload(store.load(rel))
        report = check_trace(rec)
        assert report.ok, report.render_text()

    def test_trace_sidecar_is_not_manifested(self, tmp_path):
        from repro.ckpt import manifest as manifest_mod
        from repro.ckpt import naming
        from repro.storage.store import ObjectStore

        eng = make_engine(parallel=ParallelConfig(dp=2, zero_stage=1))
        eng.train(1)
        info = save_distributed_checkpoint(
            eng, str(tmp_path), dump_trace=True
        )
        manifest = manifest_mod.read_manifest(ObjectStore(str(tmp_path)),
                                              info.tag)
        assert naming.TRACE_FILE not in manifest["files"]
