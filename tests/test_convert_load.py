"""Tests for UCP conversion (Algorithm 1) and target-side loading."""

import numpy as np
import pytest

from repro.core.atom import AtomStore
from repro.core.convert import ucp_convert
from repro.core.errors import PatternMatchError, UCPFormatError, UCPIncompatibleError
from repro.core.loader import load_ucp_into_engine
from repro.core.metadata import UCPMetadata
from repro.core.patterns import PatternProgram, PatternRule
from repro.dist.topology import ParallelConfig
from repro.parallel.tp import PATTERN_REPLICATED
from repro.storage.store import ObjectStore

from tests.helpers import make_engine


def unpadded(engine, name, values):
    """Slice away structural padding (whose contents are dead state:
    the source carries random init there, UCP re-pads with zeros)."""
    spec = engine.layout.spec(name)
    return values[tuple(slice(0, d) for d in spec.unpadded_shape)]


@pytest.fixture
def source_checkpoint(tmp_path):
    """A trained source run (tp2.pp2.dp2) with a saved checkpoint."""
    engine = make_engine(parallel=ParallelConfig(tp=2, pp=2, dp=2), seed=7)
    engine.train(3)
    ckpt_dir = str(tmp_path / "ckpt")
    engine.save_checkpoint(ckpt_dir)
    return engine, ckpt_dir, str(tmp_path / "ucp")


class TestConvert:
    def test_atoms_created_for_every_parameter(self, source_checkpoint):
        engine, ckpt_dir, ucp_dir = source_checkpoint
        report = ucp_convert(ckpt_dir, ucp_dir)
        atoms = AtomStore(ucp_dir).list_atoms()
        assert set(atoms) == set(engine.layout.shard_specs)
        assert report.num_params == len(atoms)

    def test_atom_values_match_consolidated_state(self, source_checkpoint):
        engine, ckpt_dir, ucp_dir = source_checkpoint
        ucp_convert(ckpt_dir, ucp_dir)
        store = AtomStore(ucp_dir)
        for kind in ("fp32", "exp_avg", "exp_avg_sq"):
            consolidated = engine.zero.consolidated_tensors(kind)
            for name, full in consolidated.items():
                spec = engine.layout.spec(name)
                expected = full[tuple(slice(0, d) for d in spec.unpadded_shape)]
                assert np.array_equal(store.read_state(name, kind), expected), (
                    name, kind,
                )

    def test_atoms_are_padding_free(self, source_checkpoint):
        engine, ckpt_dir, ucp_dir = source_checkpoint
        ucp_convert(ckpt_dir, ucp_dir)
        emb = AtomStore(ucp_dir).read_state("embedding.weight", "fp32")
        assert emb.shape[0] == engine.model_cfg.vocab_size  # unpadded

    def test_metadata_records_provenance(self, source_checkpoint):
        _, ckpt_dir, ucp_dir = source_checkpoint
        ucp_convert(ckpt_dir, ucp_dir)
        meta = UCPMetadata.load(ObjectStore(ucp_dir))
        assert meta.iteration == 3
        assert meta.optimizer_step == 3
        assert meta.source_parallel_config["tp"] == 2
        assert len(meta.params) > 0
        assert meta.pattern_program["rules"]

    def test_parallel_workers_produce_identical_atoms(self, source_checkpoint, tmp_path):
        _, ckpt_dir, _ = source_checkpoint
        serial_dir = str(tmp_path / "serial")
        threaded_dir = str(tmp_path / "threaded")
        ucp_convert(ckpt_dir, serial_dir, workers=0)
        ucp_convert(ckpt_dir, threaded_dir, workers=4)
        a, b = AtomStore(serial_dir), AtomStore(threaded_dir)
        assert a.list_atoms() == b.list_atoms()
        for name in a.list_atoms():
            assert np.array_equal(
                a.read_state(name, "fp32"), b.read_state(name, "fp32")
            )

    def test_report_timings_populated(self, source_checkpoint):
        _, ckpt_dir, ucp_dir = source_checkpoint
        report = ucp_convert(ckpt_dir, ucp_dir)
        assert report.total_seconds > 0
        assert report.num_files == 8  # 4 mp ranks x 2 dp ranks
        assert report.atom_bytes > 0
        assert report.simulated_read_s > 0

    def test_wrong_program_detected(self, source_checkpoint):
        """strict_spec_check catches a program that disagrees with how
        the checkpoint was actually sharded."""
        _, ckpt_dir, ucp_dir = source_checkpoint
        bad_program = PatternProgram([PatternRule(r".*", PATTERN_REPLICATED)])
        with pytest.raises(PatternMatchError, match="classifies"):
            ucp_convert(ckpt_dir, ucp_dir, program=bad_program)

    def test_empty_checkpoint_dir_raises(self, tmp_path):
        from repro.ckpt.errors import CheckpointNotFoundError
        with pytest.raises(CheckpointNotFoundError):
            ucp_convert(str(tmp_path / "nothing"), str(tmp_path / "out"))


class TestLoadIntoEngine:
    def test_state_equivalence_after_reshard(self, source_checkpoint):
        """The paper's core guarantee: convert -> load preserves every
        fp32 master and Adam moment exactly, under a new topology."""
        engine, ckpt_dir, ucp_dir = source_checkpoint
        ucp_convert(ckpt_dir, ucp_dir)
        target = make_engine(parallel=ParallelConfig(tp=1, pp=1, dp=4, zero_stage=2), seed=0)
        load_ucp_into_engine(target, ucp_dir)
        for kind in ("fp32", "exp_avg", "exp_avg_sq"):
            src = engine.zero.consolidated_tensors(kind)
            dst = target.zero.consolidated_tensors(kind)
            for name in src:
                assert np.array_equal(
                    unpadded(engine, name, src[name]),
                    unpadded(engine, name, dst[name]),
                ), (name, kind)

    def test_iteration_and_step_restored(self, source_checkpoint):
        _, ckpt_dir, ucp_dir = source_checkpoint
        ucp_convert(ckpt_dir, ucp_dir)
        target = make_engine(parallel=ParallelConfig(dp=2))
        load_ucp_into_engine(target, ucp_dir)
        assert target.iteration == 3
        assert target.zero.global_step == 3

    def test_model_weights_synced(self, source_checkpoint):
        engine, ckpt_dir, ucp_dir = source_checkpoint
        ucp_convert(ckpt_dir, ucp_dir)
        target = make_engine(parallel=ParallelConfig())
        load_ucp_into_engine(target, ucp_dir)
        src_state = engine.model.state_dict()
        dst_state = target.model.state_dict()
        for name in src_state:
            assert np.array_equal(
                unpadded(engine, name, src_state[name]),
                unpadded(engine, name, dst_state[name]),
            ), name

    def test_wrong_model_raises(self, source_checkpoint):
        _, ckpt_dir, ucp_dir = source_checkpoint
        ucp_convert(ckpt_dir, ucp_dir)
        target = make_engine("llama-mini")
        with pytest.raises(UCPIncompatibleError, match="model"):
            load_ucp_into_engine(target, ucp_dir)

    def test_not_a_ucp_dir_raises(self, tmp_path):
        with pytest.raises(UCPFormatError, match="not a UCP directory"):
            load_ucp_into_engine(make_engine(), str(tmp_path))

    def test_missing_atom_detected(self, source_checkpoint):
        _, ckpt_dir, ucp_dir = source_checkpoint
        ucp_convert(ckpt_dir, ucp_dir)
        store = ObjectStore(ucp_dir)
        meta = UCPMetadata.load(store)
        del meta.params["final_norm.weight"]
        meta.save(store)
        with pytest.raises(UCPIncompatibleError, match="missing atoms"):
            load_ucp_into_engine(make_engine(), ucp_dir)

    def test_small_atom_cache_still_correct(self, source_checkpoint):
        engine, ckpt_dir, ucp_dir = source_checkpoint
        ucp_convert(ckpt_dir, ucp_dir)
        target = make_engine(parallel=ParallelConfig(tp=2, dp=2))
        load_ucp_into_engine(target, ucp_dir, max_cached_atoms=1)
        src = engine.zero.consolidated_tensors("fp32")
        dst = target.zero.consolidated_tensors("fp32")
        for name in src:
            assert np.array_equal(
                unpadded(engine, name, src[name]),
                unpadded(engine, name, dst[name]),
            ), name


class TestConversionIdempotency:
    def test_reconversion_overwrites_cleanly(self, source_checkpoint):
        """Running the converter twice into the same directory is safe
        and produces the same atoms (crash-and-retry friendliness)."""
        _, ckpt_dir, ucp_dir = source_checkpoint
        first = ucp_convert(ckpt_dir, ucp_dir)
        second = ucp_convert(ckpt_dir, ucp_dir)
        assert first.num_params == second.num_params
        store = AtomStore(ucp_dir)
        assert len(store.list_atoms()) == first.num_params

    def test_interrupted_conversion_recovers_on_retry(self, source_checkpoint):
        """A conversion that died before writing ucp_meta (the commit
        point) is not loadable; re-running completes it."""
        engine, ckpt_dir, ucp_dir = source_checkpoint
        ucp_convert(ckpt_dir, ucp_dir)
        store = ObjectStore(ucp_dir)
        store.delete("ucp_meta.npt")  # simulate a crash pre-commit
        with pytest.raises(UCPFormatError, match="not a UCP"):
            load_ucp_into_engine(make_engine(), ucp_dir)
        ucp_convert(ckpt_dir, ucp_dir)  # retry
        target = make_engine(parallel=ParallelConfig(dp=2))
        load_ucp_into_engine(target, ucp_dir)
        assert target.iteration == 3
