"""Streaming byte-range conversion and sliced loading.

The streamed pipeline (read plans lowered from provenance interval
maps, fanned over a thread pool) must be *byte-identical* to the
legacy full-read path while reading strictly fewer source bytes, and
the sliced load path must reproduce the same engine state while
reading strictly fewer atom bytes.  A crash mid-fan-out must resume
reusing exactly the atoms that committed.
"""

import numpy as np
import pytest

from repro.ckpt.loader import resolve_tag
from repro.ckpt.saver import save_distributed_checkpoint
from repro.core.atom import AtomStore
from repro.core.convert import ucp_convert
from repro.core.loader import load_ucp_into_engine
from repro.dist.topology import ParallelConfig
from repro.storage.faults import CrashAtWrite, InjectedCrash
from repro.storage.store import ObjectStore

from tests.helpers import make_engine


def dir_digests(root, sub="."):
    store = ObjectStore(str(root))
    return {rel: store.digest(rel) for rel in store.list(sub)}


def tag_bytes(ckpt_dir):
    """Total committed bytes of the checkpoint's latest tag."""
    store = ObjectStore(ckpt_dir)
    tag = resolve_tag(store, None)
    return sum(store.size(rel) for rel in store.list(tag))


def unpadded(engine, name, values):
    spec = engine.layout.spec(name)
    return values[tuple(slice(0, d) for d in spec.unpadded_shape)]


@pytest.fixture(scope="module")
def tp4_checkpoint(tmp_path_factory):
    """A trained tp4.dp2 source run — the TP-degree-change workhorse."""
    root = tmp_path_factory.mktemp("stream_tp4")
    engine = make_engine(parallel=ParallelConfig(tp=4, dp=2), seed=11)
    engine.train(3)
    ckpt_dir = str(root / "ckpt")
    engine.save_checkpoint(ckpt_dir)
    return engine, ckpt_dir


@pytest.fixture(scope="module")
def moe_checkpoint(tmp_path_factory):
    """An expert-parallel MoE source run."""
    root = tmp_path_factory.mktemp("stream_moe")
    engine = make_engine(
        "moe-mini",
        parallel=ParallelConfig(tp=2, dp=2, expert_parallel=True),
        seed=11,
    )
    engine.train(2)
    ckpt_dir = str(root / "ckpt")
    engine.save_checkpoint(ckpt_dir)
    return engine, ckpt_dir


class TestStreamedByteIdentity:
    def test_streamed_atoms_byte_identical_tp_change(
        self, tp4_checkpoint, tmp_path
    ):
        """Streamed TP=4 source conversion == full-read conversion,
        digest-for-digest across the whole UCP directory."""
        _, ckpt_dir = tp4_checkpoint
        full_dir = str(tmp_path / "full")
        stream_dir = str(tmp_path / "stream")
        full = ucp_convert(ckpt_dir, full_dir, streaming=False)
        streamed = ucp_convert(ckpt_dir, stream_dir)
        assert full.streamed is False
        assert streamed.streamed is True
        assert streamed.num_params == full.num_params
        assert dir_digests(stream_dir) == dir_digests(full_dir)

    def test_streamed_atoms_byte_identical_moe(self, moe_checkpoint, tmp_path):
        _, ckpt_dir = moe_checkpoint
        full_dir = str(tmp_path / "full")
        stream_dir = str(tmp_path / "stream")
        ucp_convert(ckpt_dir, full_dir, streaming=False)
        report = ucp_convert(ckpt_dir, stream_dir)
        assert report.streamed is True
        assert dir_digests(stream_dir) == dir_digests(full_dir)

    def test_streamed_identical_under_per_param_layout(self, tmp_path):
        engine = make_engine(
            parallel=ParallelConfig(tp=2, dp=2, zero_stage=0), seed=3
        )
        engine.train(2)
        ckpt_dir = str(tmp_path / "ckpt")
        save_distributed_checkpoint(
            engine, ckpt_dir, optimizer_layout="per_param"
        )
        full_dir = str(tmp_path / "full")
        stream_dir = str(tmp_path / "stream")
        ucp_convert(ckpt_dir, full_dir, streaming=False)
        report = ucp_convert(ckpt_dir, stream_dir)
        assert report.streamed is True
        assert dir_digests(stream_dir) == dir_digests(full_dir)

    def test_worker_count_does_not_change_bytes(self, tp4_checkpoint, tmp_path):
        _, ckpt_dir = tp4_checkpoint
        serial_dir = str(tmp_path / "serial")
        threaded_dir = str(tmp_path / "threaded")
        ucp_convert(ckpt_dir, serial_dir, workers=1)
        ucp_convert(ckpt_dir, threaded_dir, workers=4)
        assert dir_digests(serial_dir) == dir_digests(threaded_dir)


class TestReadByteBounds:
    def test_streamed_reads_less_than_checkpoint(self, tp4_checkpoint, tmp_path):
        """The read plans skip model_states files and the padding/
        non-selected bytes entirely: a streamed conversion must read
        strictly less than the source tag's total size."""
        _, ckpt_dir = tp4_checkpoint
        report = ucp_convert(ckpt_dir, str(tmp_path / "ucp"))
        total = tag_bytes(ckpt_dir)
        assert 0 < report.bytes_read < total, (report.bytes_read, total)
        assert report.bytes_written > 0
        assert report.peak_window_bytes > 0

    def test_resume_touches_only_fresh_atom_files(self, tp4_checkpoint, tmp_path):
        """Streaming resume reads only the files the *fresh* atoms'
        plans touch: with one atom missing, the re-run must read far
        fewer source bytes than the clean conversion did."""
        _, ckpt_dir = tp4_checkpoint
        ucp_dir = str(tmp_path / "ucp")
        clean = ucp_convert(ckpt_dir, ucp_dir)
        store = ObjectStore(ucp_dir)
        for rel in store.list("atoms/final_norm.weight"):
            store.delete(rel)
        store.delete("ucp_meta.npt")
        resumed = ucp_convert(ckpt_dir, ucp_dir)
        assert resumed.num_reused == clean.num_params - 1
        # final_norm is replicated: its plan (with replica verification)
        # touches one dp-group's tp files — half the source files
        assert 0 < resumed.bytes_read < 0.75 * clean.bytes_read, (
            resumed.bytes_read, clean.bytes_read,
        )

    def test_digest_pass_shares_cache_with_extract(self, tp4_checkpoint, tmp_path):
        """Integrity verification streams through the same block cache
        the extract phase reads from, so verified bytes are not read
        twice from disk."""
        _, ckpt_dir = tp4_checkpoint
        report = ucp_convert(ckpt_dir, str(tmp_path / "ucp"))
        assert report.cache_hits > 0


class TestConversionKnobs:
    """The batching/overlap knobs tune IO shape, never output bytes."""

    def test_coalesce_gap_is_byte_invisible(self, tp4_checkpoint, tmp_path):
        _, ckpt_dir = tp4_checkpoint
        tight_dir = str(tmp_path / "tight")
        wide_dir = str(tmp_path / "wide")
        tight = ucp_convert(ckpt_dir, tight_dir, coalesce_gap=0)
        wide = ucp_convert(ckpt_dir, wide_dir, coalesce_gap=1 << 20)
        assert dir_digests(tight_dir) == dir_digests(wide_dir)
        assert wide.num_preads <= tight.num_preads

    def test_process_digest_pool_identical(self, tp4_checkpoint, tmp_path):
        _, ckpt_dir = tp4_checkpoint
        thread_dir = str(tmp_path / "thread")
        proc_dir = str(tmp_path / "proc")
        ucp_convert(ckpt_dir, thread_dir, workers=2)
        report = ucp_convert(
            ckpt_dir, proc_dir, workers=2, digest_pool="process"
        )
        assert report.streamed is True
        assert dir_digests(proc_dir) == dir_digests(thread_dir)

    def test_invalid_knobs_rejected(self, tp4_checkpoint, tmp_path):
        _, ckpt_dir = tp4_checkpoint
        with pytest.raises(ValueError):
            ucp_convert(ckpt_dir, str(tmp_path / "x"), digest_pool="gpu")
        with pytest.raises(ValueError):
            ucp_convert(ckpt_dir, str(tmp_path / "y"), coalesce_gap=-1)

    def test_stage_timings_and_counters_populated(
        self, tp4_checkpoint, tmp_path
    ):
        _, ckpt_dir = tp4_checkpoint
        streamed = ucp_convert(ckpt_dir, str(tmp_path / "s"))
        assert set(streamed.stage_seconds) == {
            "lower", "plan", "digest", "read", "assemble", "write",
            "finalize",
        }
        assert all(t >= 0 for t in streamed.stage_seconds.values())
        assert streamed.num_preads > 0
        assert streamed.num_batches > 0
        assert streamed.ranges_coalesced > 0
        assert (
            streamed.header_bytes
            + streamed.digest_bytes
            <= streamed.bytes_read
        )
        assert 0 < streamed.planned_state_bytes <= streamed.digest_bytes
        full = ucp_convert(
            ckpt_dir, str(tmp_path / "f"), streaming=False
        )
        assert set(full.stage_seconds) == {"extract", "union", "write"}

    def test_window_auto_sizing_reads_whole_files(
        self, tp4_checkpoint, tmp_path
    ):
        """With no explicit window the reader grows it to the largest
        touched file, so the digest pass caches each file as one block
        and extract is served zero-copy — far fewer preads than a
        small fixed window, same output bytes."""
        _, ckpt_dir = tp4_checkpoint
        auto_dir = str(tmp_path / "auto")
        fixed_dir = str(tmp_path / "fixed")
        auto = ucp_convert(ckpt_dir, auto_dir)
        fixed = ucp_convert(ckpt_dir, fixed_dir, window_bytes=4096)
        assert dir_digests(auto_dir) == dir_digests(fixed_dir)
        assert auto.num_preads < fixed.num_preads
        assert fixed.peak_window_bytes <= 4096
        src = ObjectStore(ckpt_dir)
        largest = max(src.size(rel) for rel in src.list("."))
        assert auto.peak_window_bytes >= min(largest, 64 << 20)


class TestSlicedLoad:
    def test_sliced_load_state_identical_fewer_bytes(
        self, tp4_checkpoint, tmp_path
    ):
        """Each target rank pulls only its partition's byte slices of
        each atom; the restored state must match whole-atom loading
        bit-for-bit while reading fewer bytes."""
        engine, ckpt_dir = tp4_checkpoint
        ucp_dir = str(tmp_path / "ucp")
        ucp_convert(ckpt_dir, ucp_dir)

        whole_store = ObjectStore(ucp_dir)
        whole = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=0)
        load_ucp_into_engine(whole, ucp_dir, sliced=False, store=whole_store)

        sliced_store = ObjectStore(ucp_dir)
        sliced = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=0)
        load_ucp_into_engine(sliced, ucp_dir, sliced=True, store=sliced_store)

        for kind in ("fp32", "exp_avg", "exp_avg_sq"):
            src = engine.zero.consolidated_tensors(kind)
            dst = sliced.zero.consolidated_tensors(kind)
            for name in src:
                assert np.array_equal(
                    unpadded(engine, name, src[name]),
                    unpadded(engine, name, dst[name]),
                ), (name, kind)
        assert 0 < sliced_store.bytes_read < whole_store.bytes_read

    def test_single_rank_slice_under_half_of_atom_bytes(
        self, tp4_checkpoint, tmp_path
    ):
        """The CI perf gate's invariant: one tp-rank of a tp=2 target
        reads less than half the optimizer-state atom bytes."""
        _, ckpt_dir = tp4_checkpoint
        ucp_dir = str(tmp_path / "ucp")
        ucp_convert(ckpt_dir, ucp_dir)
        store = ObjectStore(ucp_dir)
        atom_bytes = sum(
            store.size(rel)
            for rel in store.list("atoms")
            if not rel.endswith("atom_meta.npt")
        )
        # a tp=2.dp=2 engine holds 4 partitions; each optimizer shard is
        # ~1/4 of every atom, so even with two ranks' worth of state the
        # per-engine read stays well under the whole-atom total — but
        # the gate below is per single (tp, dp) rank
        target = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=0)
        rank_store = ObjectStore(ucp_dir)
        load_ucp_into_engine(target, ucp_dir, sliced=True, store=rank_store)
        per_rank = rank_store.bytes_read / 4  # 4 (mp, dp) partitions
        assert per_rank < 0.5 * atom_bytes, (per_rank, atom_bytes)

    def test_sliced_moe_load_identical(self, moe_checkpoint, tmp_path):
        engine, ckpt_dir = moe_checkpoint
        ucp_dir = str(tmp_path / "ucp")
        ucp_convert(ckpt_dir, ucp_dir)
        target = make_engine("moe-mini", parallel=ParallelConfig(dp=2), seed=0)
        load_ucp_into_engine(target, ucp_dir, sliced=True)
        for kind in ("fp32", "exp_avg", "exp_avg_sq"):
            src = engine.zero.consolidated_tensors(kind)
            dst = target.zero.consolidated_tensors(kind)
            for name in src:
                assert np.array_equal(
                    unpadded(engine, name, src[name]),
                    unpadded(engine, name, dst[name]),
                ), (name, kind)

    def test_tiny_window_still_correct(self, tp4_checkpoint, tmp_path):
        """Pathologically small read windows change IO granularity, not
        the restored values."""
        engine, ckpt_dir = tp4_checkpoint
        ucp_dir = str(tmp_path / "ucp")
        ucp_convert(ckpt_dir, ucp_dir)
        target = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=0)
        load_ucp_into_engine(target, ucp_dir, sliced=True, window_bytes=64)
        src = engine.zero.consolidated_tensors("fp32")
        dst = target.zero.consolidated_tensors("fp32")
        for name in src:
            assert np.array_equal(
                unpadded(engine, name, src[name]),
                unpadded(engine, name, dst[name]),
            ), name


class TestCrashResumeUnderParallelFanOut:
    def test_crash_mid_fanout_resumes_reusing_committed_atoms(
        self, tp4_checkpoint, tmp_path
    ):
        """Kill the parallel streamed conversion partway through its
        destination writes, re-run, and check that (a) every atom whose
        four files committed before the crash is reused, (b) the final
        directory is digest-identical to a crash-free conversion."""
        _, ckpt_dir = tp4_checkpoint
        clean_dir = str(tmp_path / "clean")
        clean = ucp_convert(ckpt_dir, clean_dir)
        expected = dir_digests(clean_dir)

        for k in (3, 9, 17):
            ucp_dir = str(tmp_path / f"crash{k}")
            with pytest.raises(InjectedCrash):
                ucp_convert(
                    ckpt_dir,
                    ucp_dir,
                    workers=4,
                    dst_store=ObjectStore(ucp_dir, faults=CrashAtWrite(k)),
                )
            # atoms whose write quartet committed before the crash
            # (writes are atomic tmp-renames, so file presence == commit)
            store = ObjectStore(ucp_dir)
            committed = sum(
                1
                for atom in AtomStore(ucp_dir).list_atoms()
                if len(store.list(f"atoms/{atom}")) == 4
            )
            resumed = ucp_convert(ckpt_dir, ucp_dir, workers=4)
            assert resumed.num_reused == committed, (k, resumed.num_reused)
            assert resumed.num_params == clean.num_params
            assert dir_digests(ucp_dir) == expected, k
            # resume converts only the missing atoms: no more source
            # bytes than the clean run, no more atom bytes written
            assert resumed.bytes_read <= clean.bytes_read
            assert resumed.bytes_written <= clean.bytes_written
            if committed:
                assert resumed.bytes_written < clean.bytes_written

    def test_crash_resume_disabled_restarts_from_scratch(
        self, tp4_checkpoint, tmp_path
    ):
        _, ckpt_dir = tp4_checkpoint
        ucp_dir = str(tmp_path / "ucp")
        with pytest.raises(InjectedCrash):
            ucp_convert(
                ckpt_dir,
                ucp_dir,
                workers=4,
                dst_store=ObjectStore(ucp_dir, faults=CrashAtWrite(9)),
            )
        report = ucp_convert(ckpt_dir, ucp_dir, resume=False)
        assert report.num_reused == 0
