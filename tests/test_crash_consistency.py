"""Crash matrix: injected crashes at every file-write boundary.

The commit-protocol invariant under test: whatever the crash point,
recovery either lands on the previous committed tag bit-identically or
fails with a typed error — a torn save or conversion is never silently
loaded as wrong weights.  Conversion additionally resumes: a re-run
after a crash reuses every atom that already committed intact.
"""

import dataclasses
import shutil

import numpy as np
import pytest

from repro.ckpt.errors import CheckpointError, CheckpointNotFoundError
from repro.ckpt.loader import latest_committed_tag, load_distributed_checkpoint
from repro.ckpt.naming import LATEST_FILE, MANIFEST_FILE
from repro.ckpt.saver import save_distributed_checkpoint
from repro.core.convert import ucp_convert
from repro.core.inspect import verify_directory
from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.parallel.engine import TrainingEngine
from repro.storage.faults import (
    CrashAtWrite,
    FaultPolicy,
    InjectedCrash,
    RankKillAtWrite,
    RankKilled,
)
from repro.storage.store import ObjectStore

PARALLEL = ParallelConfig(tp=2, dp=2, zero_stage=1)


def tiny_engine(seed: int = 7) -> TrainingEngine:
    """A one-layer model keeps the write-boundary count tractable."""
    cfg = dataclasses.replace(get_config("gpt3-mini"), num_layers=1)
    return TrainingEngine(
        cfg, PARALLEL, seed=seed, global_batch_size=4, seq_len=16
    )


def dir_digests(root, sub: str = "."):
    """rel path -> sha256 for every committed object under a directory."""
    store = ObjectStore(str(root))
    return {rel: store.digest(rel) for rel in store.list(sub)}


@pytest.fixture(scope="module")
def save_setup(tmp_path_factory):
    """A committed tag, a trained-further engine, and the boundary count
    of the save that would commit the next tag."""
    root = tmp_path_factory.mktemp("crash_save")
    baseline = root / "baseline"
    engine = tiny_engine()
    engine.train(2)
    save_distributed_checkpoint(engine, str(baseline))
    engine.train(2)  # iteration 4: the next save writes global_step4
    committed = dir_digests(baseline, "global_step2")

    probe = root / "probe"
    shutil.copytree(baseline, probe)
    counter = FaultPolicy()
    save_distributed_checkpoint(
        engine, str(probe), store=ObjectStore(str(probe), faults=counter)
    )
    return engine, baseline, committed, counter.write_ops


class TestSaveCrashMatrix:
    def test_boundary_count_covers_manifest_and_latest(self, save_setup):
        _, _, committed, n_boundaries = save_setup
        # every data file + the manifest + the `latest` marker
        assert n_boundaries == len(committed) - 1 + 2

    def test_crash_at_every_write_boundary(self, save_setup, tmp_path):
        engine, baseline, committed, n_boundaries = save_setup
        for k in range(n_boundaries):
            for torn in (False, True):
                work = tmp_path / f"k{k}_{'torn' if torn else 'clean'}"
                shutil.copytree(baseline, work)
                store = ObjectStore(str(work), faults=CrashAtWrite(k, torn=torn))
                with pytest.raises(InjectedCrash):
                    save_distributed_checkpoint(engine, str(work), store=store)

                # recovery via `latest` always succeeds...
                recovered = tiny_engine(seed=0)
                tag = None
                try:
                    tag = load_distributed_checkpoint(recovered, str(work))
                except CheckpointError as exc:
                    pytest.fail(
                        f"crash at boundary {k} (torn={torn}) broke "
                        f"recovery via latest: {exc}"
                    )
                if k < n_boundaries - 1:
                    # ...onto the previous tag, bit-identical on disk
                    assert tag == "global_step2", (k, torn)
                    assert dir_digests(work, "global_step2") == committed
                else:
                    # crash during the `latest` write itself: the new
                    # tag is already committed, only the pointer is old
                    assert tag == "global_step2"

                # the in-flight tag loads only once its manifest
                # committed; anything less raises a typed error
                probe = tiny_engine(seed=0)
                try:
                    load_distributed_checkpoint(
                        probe, str(work), tag="global_step4"
                    )
                except CheckpointError:
                    assert k < n_boundaries - 1, (k, torn)
                else:
                    assert k == n_boundaries - 1, (k, torn)

                # an integrity sweep never flags the directory: torn
                # bytes live only in .tmp files outside committed state
                assert verify_directory(str(work)).ok, (k, torn)


@pytest.fixture(scope="module")
def convert_setup(tmp_path_factory):
    """A committed source, its reference conversion, and the conversion
    write-boundary count."""
    root = tmp_path_factory.mktemp("crash_convert")
    ckpt = root / "ckpt"
    engine = tiny_engine()
    engine.train(2)
    save_distributed_checkpoint(engine, str(ckpt))

    ref_ucp = root / "ref_ucp"
    ucp_convert(str(ckpt), str(ref_ucp))
    ref_digests = dir_digests(ref_ucp)

    probe = root / "probe_ucp"
    counter = FaultPolicy()
    # workers=1 throughout this matrix: the boundary arithmetic below
    # assumes the serial write order (marker, then 4 writes per atom in
    # name order, then ucp_meta); the parallel pipeline's crash-resume
    # behavior is covered by tests/test_convert_stream.py
    ucp_convert(
        str(ckpt), str(probe), workers=1,
        dst_store=ObjectStore(str(probe), faults=counter),
    )
    return engine, ckpt, ref_digests, counter.write_ops


class TestConversionCrashMatrix:
    def test_boundary_count_decomposes(self, convert_setup):
        _, _, _, n_boundaries = convert_setup
        # source marker + 4 files per atom + ucp_meta
        assert n_boundaries > 2
        assert (n_boundaries - 2) % 4 == 0

    def test_crash_at_every_write_boundary_then_resume(
        self, convert_setup, tmp_path
    ):
        engine, ckpt, ref_digests, n_boundaries = convert_setup
        total_reused = 0
        for k in range(n_boundaries):
            work = tmp_path / f"k{k}"
            store = ObjectStore(str(work), faults=CrashAtWrite(k))
            with pytest.raises(InjectedCrash):
                ucp_convert(str(ckpt), str(work), workers=1, dst_store=store)

            report = ucp_convert(str(ckpt), str(work))
            # atoms commit in 4 writes each, after the boundary-0
            # source marker; every fully committed atom is reused
            expected_reused = (k - 1) // 4 if k >= 1 else 0
            assert report.num_reused == expected_reused, k
            total_reused += report.num_reused
            # resumed output is bit-identical to a clean conversion
            assert dir_digests(work) == ref_digests, k
        assert total_reused > 0

    def test_torn_conversion_crash_resumes_identically(
        self, convert_setup, tmp_path
    ):
        _, ckpt, ref_digests, n_boundaries = convert_setup
        for k in (1, n_boundaries - 1):
            work = tmp_path / f"torn{k}"
            store = ObjectStore(str(work), faults=CrashAtWrite(k, torn=True))
            with pytest.raises(InjectedCrash):
                ucp_convert(str(ckpt), str(work), workers=1, dst_store=store)
            ucp_convert(str(ckpt), str(work))
            assert dir_digests(work) == ref_digests, k

    def test_reference_conversion_loads_exactly(self, convert_setup, tmp_path):
        engine, ckpt, _, _ = convert_setup
        ucp = tmp_path / "ucp"
        ucp_convert(str(ckpt), str(ucp))
        target = tiny_engine(seed=0)
        target.load_universal(str(ucp))
        for kind in ("fp32", "exp_avg", "exp_avg_sq"):
            a = engine.zero.consolidated_tensors(kind)
            b = target.zero.consolidated_tensors(kind)
            for name in a:
                cut = tuple(
                    slice(0, d)
                    for d in engine.layout.spec(name).unpadded_shape
                )
                assert np.array_equal(a[name][cut], b[name][cut]), (name, kind)

    def test_stale_output_from_other_source_not_reused(
        self, convert_setup, tmp_path
    ):
        """Atoms left by a conversion of a *different* committed source
        must be rewritten, not reused — the identity marker gates it."""
        _, ckpt, ref_digests, _ = convert_setup
        other = tiny_engine(seed=3)
        other.train(2)
        other_ckpt = tmp_path / "other_ckpt"
        save_distributed_checkpoint(other, str(other_ckpt))

        work = tmp_path / "ucp"
        ucp_convert(str(other_ckpt), str(work))
        report = ucp_convert(str(ckpt), str(work))
        assert report.num_reused == 0
        # fully rewritten: every object matches the clean conversion
        assert dir_digests(work) == ref_digests


class TestLatestCommittedSelection:
    """``latest_committed_tag`` under partial and torn final saves.

    The elastic supervisor resumes from this function's answer, so it
    must always name the newest tag whose commit manifest is intact —
    never a torn save, and *newer* than the ``latest`` pointer when a
    crash struck between the manifest commit and the pointer update.
    """

    def _trained(self, steps: int = 2) -> TrainingEngine:
        engine = tiny_engine()
        engine.train(steps)
        return engine

    @pytest.mark.parametrize("torn", [False, True])
    def test_pre_commit_kill_keeps_previous_tag(self, tmp_path, torn):
        engine = self._trained(2)
        save_distributed_checkpoint(engine, str(tmp_path))
        engine.train(2)
        store = ObjectStore(
            str(tmp_path),
            faults=RankKillAtWrite(ranks=(1,), match=MANIFEST_FILE, torn=torn),
        )
        with pytest.raises(RankKilled):
            save_distributed_checkpoint(engine, str(tmp_path), store=store)
        # the torn/partial global_step4 never committed
        assert latest_committed_tag(str(tmp_path)) == "global_step2"
        # and the plain loader agrees via the untouched pointer
        probe = tiny_engine(seed=0)
        assert load_distributed_checkpoint(probe, str(tmp_path)) == "global_step2"
        assert verify_directory(str(tmp_path)).ok

    def test_post_commit_kill_advances_past_stale_pointer(self, tmp_path):
        engine = self._trained(2)
        save_distributed_checkpoint(engine, str(tmp_path))
        engine.train(2)
        store = ObjectStore(
            str(tmp_path),
            faults=RankKillAtWrite(ranks=(1,), match=LATEST_FILE),
        )
        with pytest.raises(RankKilled):
            save_distributed_checkpoint(engine, str(tmp_path), store=store)
        # manifest committed before the pointer died: the new tag is
        # durable even though `latest` still names its predecessor
        assert latest_committed_tag(str(tmp_path)) == "global_step4"
        probe = tiny_engine(seed=0)
        assert load_distributed_checkpoint(probe, str(tmp_path)) == "global_step2"
        assert verify_directory(str(tmp_path)).ok

    def test_committed_saves_pick_newest(self, tmp_path):
        engine = self._trained(2)
        save_distributed_checkpoint(engine, str(tmp_path))
        assert latest_committed_tag(str(tmp_path)) == "global_step2"
        engine.train(2)
        save_distributed_checkpoint(engine, str(tmp_path))
        assert latest_committed_tag(str(tmp_path)) == "global_step4"

    def test_no_committed_tag_raises_typed_error(self, tmp_path):
        with pytest.raises(CheckpointNotFoundError):
            latest_committed_tag(str(tmp_path))
        # a save killed before its manifest leaves only a torn tag
        engine = self._trained(2)
        store = ObjectStore(
            str(tmp_path),
            faults=RankKillAtWrite(ranks=(0,), match=MANIFEST_FILE, torn=True),
        )
        with pytest.raises(RankKilled):
            save_distributed_checkpoint(engine, str(tmp_path), store=store)
        with pytest.raises(CheckpointNotFoundError):
            latest_committed_tag(str(tmp_path))
