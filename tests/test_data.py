"""Tests for the synthetic corpus and topology-aware data loader."""

import numpy as np
import pytest

from repro.data.corpus import SyntheticCorpus
from repro.data.dataloader import DataLoader


class TestCorpus:
    def test_sequence_is_deterministic(self):
        a = SyntheticCorpus(100, 16, seed=1).sequence(step=3, sample=7)
        b = SyntheticCorpus(100, 16, seed=1).sequence(step=3, sample=7)
        assert np.array_equal(a, b)

    def test_sequences_vary_by_step_and_sample(self):
        corpus = SyntheticCorpus(100, 16, seed=1)
        assert not np.array_equal(corpus.sequence(0, 0), corpus.sequence(1, 0))
        assert not np.array_equal(corpus.sequence(0, 0), corpus.sequence(0, 1))

    def test_tokens_in_range(self):
        corpus = SyntheticCorpus(50, 32, seed=2)
        batch = corpus.batch(0, 0, 8)
        assert batch.min() >= 0 and batch.max() < 50

    def test_sequence_length(self):
        corpus = SyntheticCorpus(50, 32, seed=2)
        assert corpus.sequence(0, 0).shape == (33,)  # seq_len + 1

    def test_zipf_head_is_heavy(self):
        """Low token ids must dominate (Zipf unigram prior)."""
        corpus = SyntheticCorpus(200, 64, seed=3)
        tokens = corpus.batch(0, 0, 32).reshape(-1)
        head_mass = (tokens < 20).mean()
        uniform_expectation = 20 / 200
        assert head_mass > 3 * uniform_expectation

    def test_markov_structure_is_learnable(self):
        """Successor entropy must be far below the unigram entropy —
        the structure the LM's falling loss curve learns."""
        corpus = SyntheticCorpus(100, 64, seed=4)
        tokens = corpus.batch(0, 0, 64).reshape(-1)
        # most tokens are followed by one of their 4 preferred successors
        hits = 0
        for prev, nxt in zip(tokens[:-1], tokens[1:]):
            if nxt in corpus._successors[prev]:
                hits += 1
        assert hits / (len(tokens) - 1) > 0.5

    def test_tiny_vocab_raises(self):
        with pytest.raises(ValueError, match="vocab_size"):
            SyntheticCorpus(2, 16)

    def test_bad_count_raises(self):
        with pytest.raises(ValueError, match="count"):
            SyntheticCorpus(50, 16).batch(0, 0, 0)


class TestDataLoader:
    def test_replica_slices_tile_the_global_batch(self):
        corpus = SyntheticCorpus(100, 8, seed=1)
        loader = DataLoader(corpus, global_batch_size=8, dp_world=4)
        global_batch = loader.global_batch(step=5)
        rebuilt = np.concatenate(
            [loader.replica_batch(5, d).inputs for d in range(4)]
        )
        assert np.array_equal(rebuilt, global_batch.inputs)

    def test_dp_width_invariance(self):
        """The same global data regardless of DP width — the property
        resumes across topologies rely on."""
        corpus = SyntheticCorpus(100, 8, seed=1)
        wide = DataLoader(corpus, 8, dp_world=4)
        narrow = DataLoader(corpus, 8, dp_world=2)
        wide_all = np.concatenate([wide.replica_batch(3, d).inputs for d in range(4)])
        narrow_all = np.concatenate([narrow.replica_batch(3, d).inputs for d in range(2)])
        assert np.array_equal(wide_all, narrow_all)

    def test_targets_are_shifted_inputs(self):
        corpus = SyntheticCorpus(100, 8, seed=1)
        loader = DataLoader(corpus, 4)
        batch = loader.global_batch(0)
        full = corpus.batch(0, 0, 4)
        assert np.array_equal(batch.inputs, full[:, :-1])
        assert np.array_equal(batch.targets, full[:, 1:])

    def test_indivisible_batch_raises(self):
        corpus = SyntheticCorpus(100, 8, seed=1)
        with pytest.raises(ValueError, match="divide evenly"):
            DataLoader(corpus, 10, dp_world=4)

    def test_bad_dp_rank_raises(self):
        corpus = SyntheticCorpus(100, 8, seed=1)
        loader = DataLoader(corpus, 4, dp_world=2)
        with pytest.raises(IndexError, match="dp_rank"):
            loader.replica_batch(0, 2)

    def test_per_replica_size(self):
        corpus = SyntheticCorpus(100, 8, seed=1)
        loader = DataLoader(corpus, 12, dp_world=3)
        assert loader.per_replica == 4
        assert loader.replica_batch(0, 1).num_samples == 4
