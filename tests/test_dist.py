"""Tests for the simulated distributed runtime."""

import numpy as np
import pytest

from repro.dist.cluster import Cluster, RankFailure
from repro.dist.collectives import (
    CommTracker,
    all_gather,
    all_reduce,
    broadcast,
    reduce_scatter,
)
from repro.dist.process_group import ProcessGroup
from repro.dist.topology import ParallelConfig, RankCoord, Topology


class TestParallelConfig:
    def test_world_size(self):
        assert ParallelConfig(tp=2, pp=3, dp=4, sp=1).world_size == 24

    def test_bad_degree_raises(self):
        with pytest.raises(ValueError, match="degree"):
            ParallelConfig(tp=0)

    def test_bad_zero_stage_raises(self):
        with pytest.raises(ValueError, match="zero_stage"):
            ParallelConfig(zero_stage=4)

    def test_zero3_excludes_model_parallelism(self):
        with pytest.raises(ValueError, match="ZeRO-3"):
            ParallelConfig(tp=2, zero_stage=3)

    def test_round_trip(self):
        cfg = ParallelConfig(tp=2, pp=2, dp=2, sp=1, zero_stage=2)
        assert ParallelConfig.from_dict(cfg.to_dict()) == cfg

    def test_describe(self):
        assert ParallelConfig(tp=2, pp=4, dp=1).describe() == "tp2.pp4.dp1.sp1.zero1"


class TestTopology:
    def test_rank_coord_round_trip(self):
        topo = Topology(ParallelConfig(tp=2, pp=2, dp=2))
        for rank in topo.ranks():
            assert topo.rank(topo.coord(rank)) == rank

    def test_tp_is_innermost(self):
        """Megatron convention: adjacent global ranks share a TP group."""
        topo = Topology(ParallelConfig(tp=2, pp=2, dp=2))
        assert topo.group_ranks("tp", 0) == [0, 1]
        assert topo.group_ranks("tp", 3) == [2, 3]

    def test_dp_is_outermost(self):
        topo = Topology(ParallelConfig(tp=2, pp=2, dp=2))
        assert topo.group_ranks("dp", 0) == [0, 4]

    def test_groups_partition_the_world(self):
        topo = Topology(ParallelConfig(tp=2, pp=2, dp=2))
        for axis in ("tp", "pp", "dp", "sp"):
            seen = sorted(r for group in topo.groups(axis) for r in group)
            assert seen == list(range(8))

    def test_model_parallel_rank_ignores_dp(self):
        topo = Topology(ParallelConfig(tp=2, pp=2, dp=2))
        for rank in topo.ranks():
            coord = topo.coord(rank)
            peer = topo.rank(RankCoord(tp=coord.tp, pp=coord.pp, dp=0, sp=coord.sp))
            assert topo.model_parallel_rank(rank) == topo.model_parallel_rank(peer)

    def test_model_parallel_size(self):
        topo = Topology(ParallelConfig(tp=2, pp=3, dp=4, sp=1))
        assert topo.model_parallel_size() == 6
        ranks = {topo.model_parallel_rank(r) for r in topo.ranks()}
        assert ranks == set(range(6))

    def test_out_of_range_rank_raises(self):
        topo = Topology(ParallelConfig(tp=2))
        with pytest.raises(IndexError):
            topo.coord(2)


class TestCollectives:
    def test_all_reduce_sum(self):
        shards = [np.ones(4, dtype=np.float32) * i for i in range(3)]
        out = all_reduce(shards)
        for o in out:
            assert np.allclose(o, 3.0)

    def test_all_reduce_avg(self):
        shards = [np.full(2, 2.0, dtype=np.float32), np.full(2, 4.0, dtype=np.float32)]
        assert np.allclose(all_reduce(shards, op="avg")[0], 3.0)

    def test_all_reduce_deterministic_order(self, rng):
        shards = [rng.standard_normal(100).astype(np.float32) for _ in range(4)]
        a = all_reduce([s.copy() for s in shards])[0]
        b = all_reduce([s.copy() for s in shards])[0]
        assert np.array_equal(a, b)

    def test_all_reduce_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            all_reduce([np.zeros(2, dtype=np.float32), np.zeros(3, dtype=np.float32)])

    def test_all_gather_concatenates_in_rank_order(self):
        shards = [np.full(2, i, dtype=np.float32) for i in range(3)]
        out = all_gather(shards)[0]
        assert np.array_equal(out, [0, 0, 1, 1, 2, 2])

    def test_reduce_scatter_splits_reduction(self):
        shards = [np.arange(4, dtype=np.float32) for _ in range(2)]
        out = reduce_scatter(shards)
        assert np.array_equal(out[0], [0, 2])
        assert np.array_equal(out[1], [4, 6])

    def test_reduce_scatter_indivisible_raises(self):
        with pytest.raises(ValueError, match="divisible"):
            reduce_scatter([np.zeros(3, dtype=np.float32)] * 2)

    def test_broadcast(self):
        out = broadcast(np.arange(3, dtype=np.float32), 4)
        assert len(out) == 4
        assert all(np.array_equal(o, [0, 1, 2]) for o in out)

    def test_tracker_accounting(self):
        tracker = CommTracker()
        all_reduce([np.zeros(8, dtype=np.float32)] * 4, tracker=tracker)
        all_gather([np.zeros(8, dtype=np.float32)] * 4, tracker=tracker)
        assert tracker.count() == 2
        assert tracker.count("all_reduce") == 1
        assert tracker.total_bytes > 0
        tracker.reset()
        assert tracker.count() == 0

    def test_single_rank_all_reduce_is_free(self):
        tracker = CommTracker()
        all_reduce([np.zeros(8, dtype=np.float32)], tracker=tracker)
        assert tracker.total_bytes == 0


class TestProcessGroup:
    def test_local_rank(self):
        group = ProcessGroup("g", [4, 7, 9])
        assert group.local_rank(7) == 1

    def test_unknown_rank_raises(self):
        with pytest.raises(KeyError, match="not in group"):
            ProcessGroup("g", [1]).local_rank(2)

    def test_duplicate_ranks_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            ProcessGroup("g", [1, 1])

    def test_width_check(self):
        group = ProcessGroup("g", [0, 1])
        with pytest.raises(ValueError, match="expected 2 shards"):
            group.all_reduce([np.zeros(2, dtype=np.float32)])


class TestCluster:
    def test_groups_built_for_all_axes(self):
        cluster = Cluster(ParallelConfig(tp=2, pp=2, dp=2))
        assert len(cluster.groups("tp")) == 4
        assert len(cluster.groups("dp")) == 4

    def test_failure_detection(self):
        cluster = Cluster(ParallelConfig(tp=2, dp=2))
        cluster.fail_rank(2)
        assert cluster.failed_ranks == {2}
        assert cluster.healthy_ranks == [0, 1, 3]
        with pytest.raises(RankFailure, match="rank 2"):
            cluster.check_alive(2)
        with pytest.raises(RankFailure, match="healthy"):
            cluster.check_world_alive()

    def test_heal_rank(self):
        cluster = Cluster(ParallelConfig(dp=2))
        cluster.fail_rank(1)
        cluster.heal_rank(1)
        cluster.check_world_alive()

    def test_group_for_failed_rank_raises(self):
        cluster = Cluster(ParallelConfig(dp=2))
        cluster.fail_rank(0)
        with pytest.raises(RankFailure):
            cluster.group_for("dp", 0)


class TestAllToAll:
    def test_chunk_exchange(self):
        from repro.dist.collectives import all_to_all

        shards = [
            np.array([0, 1, 2, 3], dtype=np.float32),   # rank 0
            np.array([4, 5, 6, 7], dtype=np.float32),   # rank 1
        ]
        out = all_to_all(shards)
        assert np.array_equal(out[0], [0, 1, 4, 5])
        assert np.array_equal(out[1], [2, 3, 6, 7])

    def test_involution(self, rng):
        """all_to_all twice restores the original layout."""
        from repro.dist.collectives import all_to_all

        shards = [rng.standard_normal(12).astype(np.float32) for _ in range(4)]
        twice = all_to_all(all_to_all(shards))
        for a, b in zip(shards, twice):
            assert np.array_equal(a, b)

    def test_single_rank_identity(self, rng):
        from repro.dist.collectives import all_to_all

        x = rng.standard_normal(6).astype(np.float32)
        assert np.array_equal(all_to_all([x])[0], x)

    def test_indivisible_raises(self):
        from repro.dist.collectives import all_to_all

        with pytest.raises(ValueError, match="divisible"):
            all_to_all([np.zeros(3, dtype=np.float32)] * 2)

    def test_tracker_accounting(self):
        from repro.dist.collectives import all_to_all

        tracker = CommTracker()
        all_to_all([np.zeros(8, dtype=np.float32)] * 4, tracker=tracker)
        assert tracker.count("all_to_all") == 1
        assert tracker.total_bytes > 0
