"""Documentation contract: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.split(".")[-1].startswith("_")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module_name:
            continue  # re-exported; documented at the definition site
        if not (item.__doc__ and item.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(item):
            for attr_name, attr in vars(item).items():
                if attr_name.startswith("_") or not inspect.isfunction(attr):
                    continue
                if attr.__doc__ and attr.__doc__.strip():
                    continue
                # overrides inherit the base method's documentation
                inherited = any(
                    getattr(base, attr_name, None) is not None
                    and getattr(base, attr_name).__doc__
                    for base in item.__mro__[1:]
                )
                if not inherited:
                    missing.append(f"{name}.{attr_name}")
    assert not missing, f"{module_name}: undocumented public items {missing}"
