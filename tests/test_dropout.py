"""Tests for deterministic dropout and its checkpoint-exactness story."""

import dataclasses

import numpy as np
import pytest

from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.nn.dropout import Dropout, dropout_disabled, set_dropout_context
from repro.parallel.engine import TrainingEngine

from tests.helpers import make_engine


def dropout_config(rate=0.1):
    return dataclasses.replace(
        get_config("gpt3-mini"), name="gpt3-mini-dropout", dropout=rate
    )


class TestDropoutModule:
    def test_zero_rate_is_identity(self, rng):
        layer = Dropout(0.0, name="x")
        x = rng.standard_normal((4, 8)).astype(np.float32)
        assert layer(x) is x

    def test_masks_keyed_by_step(self, rng):
        layer = Dropout(0.5, name="x")
        x = np.ones((8, 32), dtype=np.float32)
        set_dropout_context(seed=1, step=0)
        a = layer(x)
        set_dropout_context(seed=1, step=1)
        b = layer(x)
        set_dropout_context(seed=1, step=0)
        c = layer(x)
        assert not np.array_equal(a, b)
        assert np.array_equal(a, c)  # same (seed, step, name) -> same mask

    def test_masks_keyed_by_layer_name(self):
        x = np.ones((8, 32), dtype=np.float32)
        set_dropout_context(seed=1, step=0)
        a = Dropout(0.5, name="layer_a")(x)
        b = Dropout(0.5, name="layer_b")(x)
        assert not np.array_equal(a, b)

    def test_inverted_scaling_preserves_expectation(self):
        layer = Dropout(0.25, name="x")
        set_dropout_context(seed=3, step=0)
        x = np.ones((100, 100), dtype=np.float32)
        out = layer(x)
        assert abs(float(out.mean()) - 1.0) < 0.02
        kept = out[out > 0]
        assert np.allclose(kept, 1.0 / 0.75, atol=1e-6)

    def test_backward_masks_gradients(self, rng):
        layer = Dropout(0.5, name="x")
        set_dropout_context(seed=2, step=0)
        x = rng.standard_normal((6, 6)).astype(np.float32)
        out = layer(x)
        grad = layer.backward(np.ones_like(x))
        assert np.array_equal(grad == 0, out == 0)

    def test_disabled_context(self, rng):
        layer = Dropout(0.9, name="x")
        x = rng.standard_normal((4, 4)).astype(np.float32)
        set_dropout_context(seed=1, step=0)
        with dropout_disabled():
            assert layer(x) is x
        # re-enabled afterwards
        assert not np.array_equal(layer(x), x)

    def test_bad_rate_raises(self):
        with pytest.raises(ValueError, match="rate"):
            Dropout(1.0, name="x")


class TestDropoutTraining:
    def _engine(self, parallel=None, seed=7):
        return TrainingEngine(
            dropout_config(0.1),
            parallel if parallel is not None else ParallelConfig(),
            seed=seed, global_batch_size=4, seq_len=16,
        )

    def test_training_converges_with_dropout(self):
        engine = self._engine()
        results = engine.train(15)
        assert results[-1].loss < results[0].loss

    def test_resume_is_bit_exact_with_dropout(self, tmp_path):
        """The design point: masks are (seed, step)-keyed, so no RNG
        state needs checkpointing and resumes replay identical masks."""
        src = self._engine()
        src.train(3)
        src.save_checkpoint(str(tmp_path))
        continued = [r.loss for r in src.train(3)]

        dst = self._engine(seed=7)
        dst.load_checkpoint(str(tmp_path))
        resumed = [r.loss for r in dst.train(3)]
        assert continued == resumed

    def test_dropout_consistent_across_topologies(self, tmp_path):
        """All ranks derive the same masks from the shared seed, so
        topology changes keep the loss band."""
        a = self._engine(parallel=ParallelConfig(tp=2, dp=2))
        b = self._engine(parallel=ParallelConfig())
        la = [r.loss for r in a.train(4)]
        lb = [r.loss for r in b.train(4)]
        assert np.allclose(la, lb, atol=2e-2)

    def test_evaluation_paths_disable_dropout(self):
        engine = self._engine()
        engine.train(1)
        a = engine.evaluate_perplexity(num_batches=1)
        b = engine.evaluate_perplexity(num_batches=1)
        assert a == b  # no stochastic masks in eval

    def test_no_dropout_modules_without_rate(self):
        engine = make_engine()
        assert engine.model.blocks[0].attn_dropout is None

    def test_dropout_adds_no_parameters(self):
        plain = make_engine()
        dropped = self._engine()
        assert plain.model.num_parameters() == dropped.model.num_parameters()
        assert set(n for n, _ in plain.model.named_parameters()) == set(
            n for n, _ in dropped.model.named_parameters()
        )
