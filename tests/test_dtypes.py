"""Tests for repro.tensor.dtypes: fp16/bf16 emulation."""

import numpy as np
import pytest

from repro.tensor.dtypes import BF16, FP16, FP32, bf16_round, cast, dtype_from_name, itemsize


class TestDTypeLookup:
    def test_lookup_by_name(self):
        assert dtype_from_name("fp32") is FP32
        assert dtype_from_name("fp16") is FP16
        assert dtype_from_name("bf16") is BF16

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown dtype"):
            dtype_from_name("fp8")

    def test_itemsize_reflects_hardware_width(self):
        assert itemsize(FP32) == 4
        assert itemsize(FP16) == 2
        assert itemsize(BF16) == 2

    def test_bf16_storage_is_float32(self):
        # numpy has no bf16; values are stored in truncated float32
        assert BF16.np_dtype == np.float32


class TestBF16Rounding:
    def test_idempotent(self, rng):
        x = rng.standard_normal(1000).astype(np.float32)
        once = bf16_round(x)
        assert np.array_equal(bf16_round(once), once)

    def test_mantissa_truncated_to_8_bits(self, rng):
        x = rng.standard_normal(1000).astype(np.float32)
        bits = bf16_round(x).view(np.uint32)
        assert (bits & 0xFFFF).max() == 0

    def test_exactly_representable_values_unchanged(self):
        x = np.array([0.0, 1.0, -1.0, 0.5, 2.0, 256.0], dtype=np.float32)
        assert np.array_equal(bf16_round(x), x)

    def test_relative_error_bounded(self, rng):
        x = rng.standard_normal(10000).astype(np.float32) * 100
        rounded = bf16_round(x)
        rel = np.abs(rounded - x) / np.abs(x)
        # bf16 has 8 mantissa bits: rel error <= 2^-8
        assert rel.max() <= 2.0**-8

    def test_round_to_nearest_even(self):
        # value exactly between two bf16 values rounds to even mantissa
        lower = np.float32(1.0)
        upper = np.frombuffer(
            np.uint32(0x3F810000).tobytes(), dtype=np.float32
        )[0]
        halfway = np.frombuffer(
            np.uint32(0x3F808000).tobytes(), dtype=np.float32
        )[0]
        rounded = bf16_round(np.array([halfway], dtype=np.float32))[0]
        assert rounded in (lower, upper)
        assert rounded == lower  # even mantissa (0x00) wins over odd (0x01)

    def test_preserves_shape(self, rng):
        x = rng.standard_normal((3, 4, 5)).astype(np.float32)
        assert bf16_round(x).shape == (3, 4, 5)


class TestCast:
    def test_fp32_cast_is_exact(self, rng):
        x = rng.standard_normal(100).astype(np.float32)
        assert np.array_equal(cast(x, FP32), x)

    def test_fp16_cast_returns_float16(self, rng):
        x = rng.standard_normal(100).astype(np.float32)
        out = cast(x, FP16)
        assert out.dtype == np.float16

    def test_bf16_cast_truncates(self, rng):
        x = rng.standard_normal(100).astype(np.float32)
        out = cast(x, BF16)
        assert out.dtype == np.float32
        assert np.array_equal(out, bf16_round(x))

    def test_fp16_loses_more_precision_than_bf16_on_large_values(self):
        # fp16 overflows at 65520; bf16 matches fp32 range
        x = np.array([1e30], dtype=np.float32)
        assert np.isinf(cast(x, FP16).astype(np.float32))[0]
        assert np.isfinite(cast(x, BF16))[0]

    def test_bf16_coarser_than_fp16_near_one(self):
        x = np.array([1.0 + 2.0**-9], dtype=np.float32)
        assert cast(x, FP16).astype(np.float32)[0] != 1.0  # fp16 keeps it
        assert cast(x, BF16)[0] == 1.0  # bf16 rounds it away
