"""Tests for the 3D-parallel training engine."""

import numpy as np
import pytest

from repro.dist.cluster import RankFailure
from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.optim.lr_schedule import CosineLRSchedule
from repro.optim.mixed_precision import MixedPrecisionPolicy
from repro.parallel.engine import TrainingEngine
from repro.tensor.dtypes import BF16, FP16

from tests.helpers import make_engine


class TestBasics:
    def test_loss_decreases_over_training(self):
        engine = make_engine()
        results = engine.train(15)
        first = np.mean([r.loss for r in results[:3]])
        last = np.mean([r.loss for r in results[-3:]])
        assert last < first

    def test_iteration_advances(self):
        engine = make_engine()
        engine.train(3)
        assert engine.iteration == 3
        assert len(engine.loss_history) == 3

    def test_grad_norm_respects_clip(self):
        engine = make_engine(grad_clip=0.01)
        result = engine.train_step()
        assert result.grad_norm >= 0  # pre-clip norm is reported

    def test_lr_follows_schedule(self):
        sched = CosineLRSchedule(max_lr=1e-3, min_lr=1e-5, warmup_steps=2, total_steps=10)
        engine = make_engine(lr_schedule=sched)
        results = engine.train(4)
        for r in results:
            assert np.isclose(r.lr, sched.lr_at(r.step))

    def test_batch_must_divide_across_dp(self):
        with pytest.raises(ValueError, match="divide"):
            make_engine(parallel=ParallelConfig(dp=3), global_batch_size=4)

    def test_negative_steps_raise(self):
        with pytest.raises(ValueError, match=">= 0"):
            make_engine().train(-1)


class TestTopologyEquivalence:
    @pytest.mark.parametrize(
        "parallel",
        [
            ParallelConfig(dp=2),
            ParallelConfig(dp=4),
            ParallelConfig(tp=2),
            ParallelConfig(pp=2),
            ParallelConfig(tp=2, pp=2, dp=2),
            ParallelConfig(sp=2),
            ParallelConfig(dp=2, zero_stage=0),
            ParallelConfig(dp=2, zero_stage=2),
            ParallelConfig(dp=2, zero_stage=3),
        ],
    )
    def test_losses_match_single_rank_run(self, parallel):
        """The simulation's core guarantee: the parallel strategy changes
        state layout, not training math (within fp32 accumulation noise)."""
        base = make_engine(parallel=ParallelConfig())
        other = make_engine(parallel=parallel)
        base_losses = [r.loss for r in base.train(5)]
        other_losses = [r.loss for r in other.train(5)]
        assert np.allclose(base_losses, other_losses, atol=2e-2)

    def test_replicas_stay_consistent(self):
        engine = make_engine(parallel=ParallelConfig(tp=2, pp=2, dp=2))
        engine.train(3)
        engine.zero.verify_replica_consistency()


class TestMixedPrecision:
    def test_bf16_training_converges(self):
        engine = make_engine(mp_policy=MixedPrecisionPolicy(BF16))
        results = engine.train(10)
        assert results[-1].loss < results[0].loss

    def test_bf16_weights_are_truncated(self):
        engine = make_engine(mp_policy=MixedPrecisionPolicy(BF16))
        engine.train(1)
        weight = engine.model.blocks[0].attn.qkv.weight.data
        assert (weight.view(np.uint32) & 0xFFFF).max() == 0

    def test_fp32_masters_keep_full_precision(self):
        engine = make_engine(mp_policy=MixedPrecisionPolicy(BF16))
        engine.train(2)
        masters = engine.zero.consolidated_tensors("fp32")
        bits = masters["blocks.0.attn.qkv.weight"].view(np.uint32)
        assert (bits & 0xFFFF).any()  # masters are NOT truncated

    def test_fp16_engine_has_loss_scaler(self):
        engine = make_engine(mp_policy=MixedPrecisionPolicy(FP16))
        assert engine.loss_scaler is not None
        engine.train(2)

    def test_bf16_engine_has_no_scaler(self):
        engine = make_engine(mp_policy=MixedPrecisionPolicy(BF16))
        assert engine.loss_scaler is None


class TestFailureInteraction:
    def test_step_fails_when_rank_dead(self):
        engine = make_engine(parallel=ParallelConfig(dp=2))
        engine.train(2)
        engine.cluster.fail_rank(1)
        with pytest.raises(RankFailure):
            engine.train_step()

    def test_heal_allows_continuation(self):
        engine = make_engine(parallel=ParallelConfig(dp=2))
        engine.cluster.fail_rank(0)
        engine.cluster.heal_rank(0)
        engine.train_step()


class TestCommAccounting:
    def test_dp_gradients_tracked(self):
        engine = make_engine(parallel=ParallelConfig(dp=2))
        engine.train(2)
        assert engine.cluster.tracker.count("all_reduce") > 0
        assert engine.cluster.tracker.count("all_gather") > 0

    def test_single_rank_has_no_traffic(self):
        engine = make_engine(parallel=ParallelConfig())
        engine.train(2)
        assert engine.cluster.tracker.total_bytes == 0


class TestDataDeterminism:
    def test_same_seed_same_losses(self):
        a = [r.loss for r in make_engine(seed=11).train(4)]
        b = [r.loss for r in make_engine(seed=11).train(4)]
        assert a == b

    def test_different_data_seed_different_losses(self):
        a = [r.loss for r in make_engine(data_seed=1).train(2)]
        b = [r.loss for r in make_engine(data_seed=2).train(2)]
        assert a != b

    def test_evaluate_loss_does_not_train(self):
        engine = make_engine()
        before = engine.evaluate_loss(step=0)
        after = engine.evaluate_loss(step=0)
        assert before == after
        assert engine.iteration == 0


class TestGradAccumulation:
    def test_micro_batches_match_full_batch_math(self):
        """Splitting a replica batch into micro-batches must not change
        training (beyond fp32 accumulation order)."""
        whole = make_engine(micro_batches=1)
        split = make_engine(micro_batches=2)
        a = [r.loss for r in whole.train(5)]
        b = [r.loss for r in split.train(5)]
        assert np.allclose(a, b, atol=2e-2)

    def test_micro_batches_compose_with_parallelism(self):
        engine = make_engine(
            parallel=ParallelConfig(tp=2, dp=2), micro_batches=2
        )
        results = engine.train(3)
        assert results[-1].loss < results[0].loss + 0.1
        engine.zero.verify_replica_consistency()

    def test_indivisible_micro_batches_raise(self):
        with pytest.raises(ValueError, match="micro_batches"):
            make_engine(global_batch_size=4, micro_batches=3)

    def test_checkpoint_resume_with_different_micro_batching(self, tmp_path):
        """Micro-batching is an execution detail, not checkpoint state:
        a resume may pick a different accumulation factor."""
        src = make_engine(micro_batches=2)
        src.train(3)
        src.save_checkpoint(str(tmp_path))
        dst = make_engine(micro_batches=4)
        dst.load_checkpoint(str(tmp_path))
        a = [r.loss for r in src.train(2)]
        b = [r.loss for r in dst.train(2)]
        assert np.allclose(a, b, atol=2e-2)


class TestHeldOutEvaluation:
    def test_perplexity_improves_with_training(self):
        engine = make_engine()
        before = engine.evaluate_perplexity(num_batches=2)
        engine.train(20)
        after = engine.evaluate_perplexity(num_batches=2)
        assert after < before

    def test_perplexity_is_deterministic_and_side_effect_free(self):
        engine = make_engine()
        engine.train(2)
        a = engine.evaluate_perplexity()
        b = engine.evaluate_perplexity()
        assert a == b
        assert engine.iteration == 2

    def test_perplexity_bounded_by_vocab(self):
        engine = make_engine()
        assert 1.0 < engine.evaluate_perplexity(num_batches=1) <= engine.model_cfg.vocab_size * 1.5

    def test_bad_num_batches_raises(self):
        with pytest.raises(ValueError, match="num_batches"):
            make_engine().evaluate_perplexity(num_batches=0)

    def test_holdout_survives_resume(self, tmp_path):
        """Held-out perplexity agrees before/after a UCP reshard."""
        from repro.core.resume import resume_training

        src = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=7)
        src.train(3)
        src.save_checkpoint(str(tmp_path))
        dst = resume_training(str(tmp_path), ParallelConfig())
        assert np.isclose(
            src.evaluate_perplexity(num_batches=1),
            dst.evaluate_perplexity(num_batches=1),
            rtol=1e-5,
        )
