"""Smoke tests: every example script must run end to end.

Examples are user-facing documentation; a broken example is a broken
deliverable, so each one's ``main()`` runs in-process here.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load_module(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.slow
@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load_module(name)
    assert hasattr(module, "main"), f"{name}.py must define main()"
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100, f"{name}.py produced almost no output"


def test_all_examples_discovered():
    assert len(EXAMPLES) >= 6
    assert "quickstart" in EXAMPLES
