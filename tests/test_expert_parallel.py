"""Tests for the expert-parallelism pattern extension.

The paper's future-work claim — "adding extensible patterns for
emerging parallelism strategies" — demonstrated end to end: a new
sub-pattern (whole experts per rank) plugs into the sharding specs, the
pattern language, the converter, and the loader, and a run can resume
*across* the two MoE layouts.
"""

import numpy as np
import pytest

from repro.core.convert import ucp_convert
from repro.core.resume import resume_training
from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.parallel.layout import ModelParallelLayout
from repro.parallel.sharding import ExpertParallelFragment, Fragmenter
from repro.parallel.tp import build_shard_specs

from tests.helpers import make_engine

EP_SOURCE = ParallelConfig(tp=2, pp=1, dp=2, expert_parallel=True)
TP_TARGET = ParallelConfig(tp=2, pp=2, dp=1, expert_parallel=False)


class TestFragmenter:
    def test_whole_experts_per_rank(self, rng):
        frag = ExpertParallelFragment(expert_axis=0)
        full = rng.standard_normal((4, 6, 3)).astype(np.float32)
        shards = [frag.shard(full, 2, r) for r in range(2)]
        assert shards[0].shape == (2, 6, 3)
        assert np.array_equal(shards[0], full[:2])  # complete experts
        assert np.array_equal(frag.join(shards), full)

    def test_indivisible_experts_raise(self):
        frag = ExpertParallelFragment(expert_axis=0)
        with pytest.raises(ValueError, match="experts not divisible"):
            frag.shard_shape((3, 4, 4), 2)

    def test_serialization_round_trip(self):
        frag = ExpertParallelFragment(expert_axis=0)
        assert Fragmenter.from_dict(frag.to_dict()) == frag


class TestShardSpecs:
    def test_flag_switches_moe_layout(self):
        cfg = get_config("moe-mini")
        ts = build_shard_specs(cfg, expert_parallel=False)
        ep = build_shard_specs(cfg, expert_parallel=True)
        name = "blocks.0.ffn.up_weight"
        assert ts[name].fragmenter.kind == "expert"
        assert ep[name].fragmenter.kind == "expert_parallel"
        # non-MoE params are unaffected
        assert ts["blocks.0.attn.qkv.weight"] == ep["blocks.0.attn.qkv.weight"]

    def test_ep_shard_shapes(self):
        cfg = get_config("moe-mini")  # 4 experts
        layout = ModelParallelLayout(cfg, EP_SOURCE)
        entry = layout.rank_layout(0, 0, 0).entry("blocks.0.ffn.up_weight")
        assert entry.shard_shape == (2, cfg.intermediate, cfg.hidden)


class TestTraining:
    def test_ep_engine_trains_and_stays_consistent(self):
        engine = make_engine("moe-mini", parallel=EP_SOURCE, global_batch_size=8)
        results = engine.train(3)
        assert results[-1].loss < results[0].loss + 0.1
        engine.zero.verify_replica_consistency()

    def test_ep_matches_tensor_sliced_training(self):
        """The MoE layout changes state placement, not math."""
        ep = make_engine("moe-mini", parallel=EP_SOURCE, global_batch_size=8)
        ts = make_engine(
            "moe-mini",
            parallel=ParallelConfig(tp=2, pp=1, dp=2),
            global_batch_size=8,
        )
        a = [r.loss for r in ep.train(3)]
        b = [r.loss for r in ts.train(3)]
        assert np.allclose(a, b, atol=2e-2)


class TestCrossLayoutResume:
    def test_ep_source_to_tensor_sliced_target(self, tmp_path):
        """The new pattern consolidates and re-shards into the old one."""
        src = make_engine("moe-mini", parallel=EP_SOURCE, seed=7, global_batch_size=8)
        src.train(2)
        ckpt = str(tmp_path / "ckpt")
        src.save_checkpoint(ckpt)
        continued = [r.loss for r in src.train(2)]

        dst = resume_training(ckpt, TP_TARGET)
        resumed = [r.loss for r in dst.train(2)]
        assert np.allclose(continued, resumed, atol=2e-2)

    def test_tensor_sliced_source_to_ep_target(self, tmp_path):
        src = make_engine(
            "moe-mini", parallel=ParallelConfig(tp=2, pp=2, dp=1),
            seed=7, global_batch_size=8,
        )
        src.train(2)
        ckpt = str(tmp_path / "ckpt")
        src.save_checkpoint(ckpt)
        continued = [r.loss for r in src.train(2)]

        dst = resume_training(ckpt, EP_SOURCE)
        resumed = [r.loss for r in dst.train(2)]
        assert np.allclose(continued, resumed, atol=2e-2)

    def test_state_bit_exact_across_layouts(self, tmp_path):
        src = make_engine("moe-mini", parallel=EP_SOURCE, seed=5, global_batch_size=8)
        src.train(1)
        ckpt, ucp = str(tmp_path / "c"), str(tmp_path / "u")
        src.save_checkpoint(ckpt)
        ucp_convert(ckpt, ucp)
        dst = make_engine("moe-mini", parallel=TP_TARGET, seed=0, global_batch_size=8)
        dst.load_universal(ucp)
        a = src.zero.consolidated_tensors("fp32")
        b = dst.zero.consolidated_tensors("fp32")
        for name in a:
            spec = src.layout.spec(name)
            cut = tuple(slice(0, d) for d in spec.unpadded_shape)
            assert np.array_equal(a[name][cut], b[name][cut]), name

    def test_config_round_trips_with_flag(self):
        assert ParallelConfig.from_dict(EP_SOURCE.to_dict()) == EP_SOURCE
