"""Failure injection: corrupt files, partial checkpoints, dead ranks."""

import numpy as np
import pytest

from repro.ckpt import manifest, naming
from repro.ckpt.errors import (
    CheckpointIntegrityError,
    CheckpointNotFoundError,
)
from repro.core.convert import ucp_convert
from repro.core.errors import AtomMissingError, UCPFormatError
from repro.core.loader import load_ucp_into_engine
from repro.dist.topology import ParallelConfig
from repro.storage.serializer import SerializationError
from repro.storage.store import ObjectStore

from tests.helpers import make_engine


@pytest.fixture
def checkpoint(tmp_path):
    engine = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=7)
    engine.train(2)
    ckpt = str(tmp_path / "ckpt")
    engine.save_checkpoint(ckpt)
    return engine, ckpt, tmp_path


class TestCorruptCheckpointFiles:
    def test_truncated_rank_file_fails_loudly(self, checkpoint):
        engine, ckpt, _ = checkpoint
        store = ObjectStore(ckpt)
        rel = f"global_step2/{naming.optim_states_name(0, 0)}"
        path = store.base / rel
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        fresh = make_engine(parallel=ParallelConfig(tp=2, dp=2))
        with pytest.raises(SerializationError, match="truncated"):
            fresh.load_checkpoint(ckpt)

    def test_garbage_rank_file_fails_loudly(self, checkpoint):
        _, ckpt, _ = checkpoint
        store = ObjectStore(ckpt)
        rel = f"global_step2/{naming.optim_states_name(1, 1)}"
        (store.base / rel).write_bytes(b"not a checkpoint at all")
        fresh = make_engine(parallel=ParallelConfig(tp=2, dp=2))
        with pytest.raises(SerializationError, match="magic"):
            fresh.load_checkpoint(ckpt)

    def test_deleted_rank_file_is_integrity_loss(self, checkpoint):
        # the commit manifest records the file, so its absence is data
        # loss after commit — not a topology mismatch
        _, ckpt, _ = checkpoint
        store = ObjectStore(ckpt)
        store.delete(f"global_step2/{naming.optim_states_name(1, 1)}")
        fresh = make_engine(parallel=ParallelConfig(tp=2, dp=2))
        with pytest.raises(CheckpointIntegrityError, match="missing rank file"):
            fresh.load_checkpoint(ckpt)

    def test_stale_latest_marker(self, checkpoint):
        _, ckpt, _ = checkpoint
        ObjectStore(ckpt).write_text("latest", "global_step999")
        fresh = make_engine(parallel=ParallelConfig(tp=2, dp=2))
        with pytest.raises(CheckpointNotFoundError, match="missing"):
            fresh.load_checkpoint(ckpt)

    def test_conversion_rejects_corrupt_source(self, checkpoint):
        _, ckpt, tmp = checkpoint
        store = ObjectStore(ckpt)
        basename = naming.optim_states_name(0, 0)
        rel = f"global_step2/{basename}"
        payload = store.load(rel)
        payload["partition_meta"]["segments"][0]["numel"] += 1
        store.save(rel, payload)
        # re-commit the manifest so the *semantic* inconsistency is
        # what the converter trips on, not the digest mismatch
        manifest.refresh_entry(store, "global_step2", basename)
        with pytest.raises(UCPFormatError):
            ucp_convert(ckpt, str(tmp / "ucp"))

    def test_out_of_band_modification_is_integrity_error(self, checkpoint):
        # same tampering, but without re-committing the manifest: the
        # digest check catches it before any semantic validation
        _, ckpt, tmp = checkpoint
        store = ObjectStore(ckpt)
        rel = f"global_step2/{naming.optim_states_name(0, 0)}"
        payload = store.load(rel)
        payload["partition_meta"]["segments"][0]["numel"] += 1
        store.save(rel, payload)
        with pytest.raises(CheckpointIntegrityError, match="modified after commit"):
            ucp_convert(ckpt, str(tmp / "ucp"))

    def test_cross_rank_adam_mismatch_rejected(self, checkpoint):
        """Regression: the converter used to take adam/loss-scaler
        state from whichever rank file it read last, silently masking a
        checkpoint spliced from incompatible runs."""
        _, ckpt, tmp = checkpoint
        store = ObjectStore(ckpt)
        basename = naming.optim_states_name(1, 1)
        rel = f"global_step2/{basename}"
        payload = store.load(rel)
        payload["adam"]["lr"] = payload["adam"]["lr"] * 10
        store.save(rel, payload)
        manifest.refresh_entry(store, "global_step2", basename)
        with pytest.raises(UCPFormatError, match="adam hyperparameters disagree"):
            ucp_convert(ckpt, str(tmp / "ucp"))

    def test_cross_rank_loss_scaler_mismatch_rejected(self, checkpoint):
        _, ckpt, tmp = checkpoint
        store = ObjectStore(ckpt)
        basename = naming.optim_states_name(0, 1)
        rel = f"global_step2/{basename}"
        payload = store.load(rel)
        # fp32 runs record no scaler; one rank claiming fp16 scaler
        # state is exactly the spliced-checkpoint case
        assert payload["loss_scaler"] is None
        payload["loss_scaler"] = {"scale": 1024.0, "good_steps": 3}
        store.save(rel, payload)
        manifest.refresh_entry(store, "global_step2", basename)
        with pytest.raises(UCPFormatError, match="loss-scaler state disagrees"):
            ucp_convert(ckpt, str(tmp / "ucp"))

    def test_uncommitted_tag_refuses_to_load(self, checkpoint):
        # deleting the manifest makes the tag look torn: all data files
        # are present and valid, but the commit record is gone
        _, ckpt, _ = checkpoint
        store = ObjectStore(ckpt)
        store.delete(manifest.manifest_path("global_step2"))
        fresh = make_engine(parallel=ParallelConfig(tp=2, dp=2))
        with pytest.raises(CheckpointIntegrityError, match="no commit manifest"):
            fresh.load_checkpoint(ckpt)


class TestCorruptUCPDirectories:
    def test_missing_atom_state_file(self, checkpoint):
        _, ckpt, tmp = checkpoint
        ucp = str(tmp / "ucp")
        ucp_convert(ckpt, ucp)
        ObjectStore(ucp).delete("atoms/final_norm.weight/exp_avg.npt")
        fresh = make_engine(parallel=ParallelConfig())
        with pytest.raises(AtomMissingError, match="exp_avg"):
            load_ucp_into_engine(fresh, ucp)

    def test_wrong_atom_shape_detected(self, checkpoint):
        _, ckpt, tmp = checkpoint
        ucp = str(tmp / "ucp")
        ucp_convert(ckpt, ucp)
        store = ObjectStore(ucp)
        store.save(
            "atoms/final_norm.weight/fp32.npt",
            {"values": np.zeros(3, dtype=np.float32)},
        )
        fresh = make_engine(parallel=ParallelConfig())
        with pytest.raises(UCPFormatError, match="shape"):
            load_ucp_into_engine(fresh, ucp)

    def test_version_mismatch_detected(self, checkpoint):
        _, ckpt, tmp = checkpoint
        ucp = str(tmp / "ucp")
        ucp_convert(ckpt, ucp)
        store = ObjectStore(ucp)
        payload = store.load("ucp_meta.npt")
        payload["version"] = 99
        store.save("ucp_meta.npt", payload)
        fresh = make_engine(parallel=ParallelConfig())
        with pytest.raises(UCPFormatError, match="version"):
            load_ucp_into_engine(fresh, ucp)


class TestRankFailureScenarios:
    def test_checkpoint_then_fail_then_resume_smaller(self, tmp_path):
        """The end-to-end failure story with the cluster simulator:
        training dies mid-run, resumes on the survivors from the last
        checkpoint, losing only the steps since it."""
        from repro.core.resume import ElasticResumeManager

        engine = make_engine(parallel=ParallelConfig(tp=2, pp=2, dp=2), seed=7)
        engine.train(2)
        ckpt = str(tmp_path / "ckpt")
        engine.save_checkpoint(ckpt)
        engine.train(1)  # progress past the checkpoint...
        engine.cluster.fail_rank(5)  # ...then lose a node
        with pytest.raises(Exception, match="failed"):
            engine.train_step()

        manager = ElasticResumeManager(ckpt, global_batch_size=4)
        survivor = manager.resume_after_failure(
            source=ParallelConfig(tp=2, pp=2, dp=2), healthy_ranks=7
        )
        # step 3's progress is lost; we restart from iteration 2
        assert survivor.iteration == 2
        survivor.train(2)
        assert survivor.iteration == 4

    def test_repeated_failures_shrink_further(self, tmp_path):
        from repro.core.resume import ElasticResumeManager

        engine = make_engine(parallel=ParallelConfig(tp=2, pp=2, dp=2), seed=7)
        engine.train(1)
        ckpt = str(tmp_path / "ckpt")
        engine.save_checkpoint(ckpt)

        manager = ElasticResumeManager(ckpt, global_batch_size=4)
        first = manager.resume_after_failure(ParallelConfig(tp=2, pp=2, dp=2), 4)
        first.train(1)
        first.save_checkpoint(ckpt)
        second = manager.resume_after_failure(first.parallel_cfg, 2)
        assert second.parallel_cfg.world_size <= 2
        assert second.iteration == 2
        second.train(1)
