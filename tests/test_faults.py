"""Tests for the fault-injection harness and the store's commit path."""

import numpy as np
import pytest

from repro.storage.faults import (
    CrashAtWrite,
    FaultPolicy,
    InjectedCrash,
    LatencySpikes,
    RetryPolicy,
    TransientFaults,
    TransientIOError,
)
from repro.storage.nvme import NVMeModel
from repro.storage.serializer import (
    ChecksumError,
    SerializationError,
    serialize,
    validate_npt,
)
from repro.storage.store import ObjectStore, sha256_hex


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.01, multiplier=2.0)
        assert policy.delay_s(1) == pytest.approx(0.01)
        assert policy.delay_s(2) == pytest.approx(0.02)
        assert policy.delay_s(3) == pytest.approx(0.04)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)


class TestFaultPolicyCounting:
    def test_counts_write_and_read_boundaries(self, tmp_path, rng):
        policy = FaultPolicy()
        store = ObjectStore(str(tmp_path), faults=policy)
        store.save("a.npt", {"x": rng.standard_normal(8).astype(np.float32)})
        store.save("b.npt", {"v": 1})
        store.write_text("latest", "a")
        store.load("a.npt")
        assert policy.write_ops == 3  # two objects + the text marker
        assert policy.read_ops == 1


class TestCrashAtWrite:
    def test_clean_crash_leaves_previous_object(self, tmp_path):
        store = ObjectStore(str(tmp_path))
        store.save("x.npt", {"v": 1})
        crashing = ObjectStore(str(tmp_path), faults=CrashAtWrite(0))
        with pytest.raises(InjectedCrash):
            crashing.save("x.npt", {"v": 2})
        assert ObjectStore(str(tmp_path)).load("x.npt") == {"v": 1}

    def test_torn_crash_only_touches_tmp_file(self, tmp_path, rng):
        store = ObjectStore(str(tmp_path))
        obj = {"x": rng.standard_normal(64).astype(np.float32)}
        store.save("x.npt", obj)
        before = (store.base / "x.npt").read_bytes()
        crashing = ObjectStore(str(tmp_path), faults=CrashAtWrite(0, torn=True))
        with pytest.raises(InjectedCrash):
            crashing.save("x.npt", {"x": np.zeros(64, dtype=np.float32)})
        # the committed object is bit-identical; the torn bytes are in
        # the .tmp sibling, which list() never surfaces
        assert (store.base / "x.npt").read_bytes() == before
        tmp = store.base / "x.npt.tmp"
        assert tmp.is_file() and 0 < tmp.stat().st_size < len(before)
        assert store.list() == ["x.npt"]

    def test_later_boundary_crashes_after_earlier_commits(self, tmp_path):
        crashing = ObjectStore(str(tmp_path), faults=CrashAtWrite(1))
        crashing.save("a.npt", {"v": 1})
        with pytest.raises(InjectedCrash):
            crashing.save("b.npt", {"v": 2})
        fresh = ObjectStore(str(tmp_path))
        assert fresh.load("a.npt") == {"v": 1}
        assert not fresh.exists("b.npt")

    def test_crash_during_latest_marker_is_atomic(self, tmp_path):
        store = ObjectStore(str(tmp_path))
        store.write_text("latest", "global_step1")
        crashing = ObjectStore(
            str(tmp_path), faults=CrashAtWrite(0, torn=True)
        )
        with pytest.raises(InjectedCrash):
            crashing.write_text("latest", "global_step2")
        assert ObjectStore(str(tmp_path)).read_text("latest") == "global_step1"


class TestTransientFaults:
    def test_retries_absorb_faults_and_charge_backoff(self, tmp_path):
        policy = TransientFaults(write_failures=2)
        retry = RetryPolicy(max_attempts=3, backoff_s=0.01, multiplier=2.0)
        store = ObjectStore(str(tmp_path), faults=policy, retry=retry)
        base_cost = ObjectStore(str(tmp_path / "ref")).save("x.npt", {"v": 1})
        assert base_cost > 0
        store.save("x.npt", {"v": 1})
        assert store.load("x.npt") == {"v": 1}
        assert policy.write_ops == 3  # two failed attempts + the success
        # both backoffs (0.01 + 0.02) were charged to simulated time
        assert store.simulated_write_s >= 0.03

    def test_exhausted_retries_surface_the_fault(self, tmp_path):
        policy = TransientFaults(write_failures=5)
        store = ObjectStore(
            str(tmp_path), faults=policy, retry=RetryPolicy(max_attempts=3)
        )
        with pytest.raises(TransientIOError):
            store.save("x.npt", {"v": 1})
        assert not store.exists("x.npt")

    def test_read_faults_also_retried(self, tmp_path):
        store = ObjectStore(str(tmp_path))
        store.save("x.npt", {"v": 7})
        flaky = ObjectStore(
            str(tmp_path), faults=TransientFaults(read_failures=1)
        )
        assert flaky.load("x.npt") == {"v": 7}
        assert flaky.simulated_read_s > 0


class TestLatencySpikes:
    def test_spikes_add_simulated_time(self, tmp_path, rng):
        obj = {"x": rng.standard_normal(128).astype(np.float32)}
        plain = ObjectStore(str(tmp_path / "plain"))
        plain.save("x.npt", obj)
        spiky = ObjectStore(
            str(tmp_path / "spiky"), faults=LatencySpikes(spike_s=0.5, every=1)
        )
        spiky.save("x.npt", obj)
        assert spiky.simulated_write_s >= plain.simulated_write_s + 0.5

    def test_degraded_nvme_profile(self):
        nvme = NVMeModel()
        slow = nvme.degraded(4.0)
        nbytes = 10**8
        assert slow.write_time(nbytes) > nvme.write_time(nbytes)
        with pytest.raises(ValueError):
            nvme.degraded(0.5)


class TestValidateNpt:
    def test_valid_bytes_pass(self, rng):
        data = serialize({"x": rng.standard_normal(32).astype(np.float32)})
        validate_npt(data)  # no exception

    def test_truncation_detected(self, rng):
        data = serialize({"x": rng.standard_normal(32).astype(np.float32)})
        with pytest.raises(SerializationError, match="truncated"):
            validate_npt(data[: len(data) // 2])

    def test_bad_magic_detected(self):
        with pytest.raises(SerializationError, match="magic"):
            validate_npt(b"JUNK" + b"\x00" * 64)

    def test_payload_corruption_detected(self, rng):
        data = bytearray(serialize({"x": rng.standard_normal(32).astype(np.float32)}))
        data[-5] ^= 0xFF
        with pytest.raises(ChecksumError):
            validate_npt(bytes(data))


class TestDigests:
    def test_save_with_digest_matches_disk(self, tmp_path, rng):
        store = ObjectStore(str(tmp_path))
        obj = {"x": rng.standard_normal(16).astype(np.float32)}
        nbytes, digest = store.save_with_digest("x.npt", obj)
        on_disk = (store.base / "x.npt").read_bytes()
        assert nbytes == len(on_disk)
        assert digest == sha256_hex(on_disk) == store.digest("x.npt")
