"""Tests for repro.tensor.flat: flat buffers and alignment padding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.flat import (
    aligned_size,
    flatten_tensors,
    pad_to_alignment,
    unflatten_tensors,
)


class TestAlignedSize:
    def test_exact_multiple_unchanged(self):
        assert aligned_size(16, 8) == 16

    def test_rounds_up(self):
        assert aligned_size(17, 8) == 24

    def test_zero(self):
        assert aligned_size(0, 8) == 0

    def test_bad_alignment_raises(self):
        with pytest.raises(ValueError, match="alignment"):
            aligned_size(10, 0)


class TestPadToAlignment:
    def test_no_padding_needed(self):
        x = np.arange(8, dtype=np.float32)
        padded, pad = pad_to_alignment(x, 8)
        assert pad == 0
        assert np.array_equal(padded, x)

    def test_padding_appends_zeros(self):
        x = np.arange(5, dtype=np.float32)
        padded, pad = pad_to_alignment(x, 8)
        assert pad == 3
        assert np.array_equal(padded[:5], x)
        assert np.array_equal(padded[5:], np.zeros(3))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            pad_to_alignment(np.zeros((2, 2)), 8)


def _named(rng, shapes):
    return [(f"p{i}", rng.standard_normal(s).astype(np.float32)) for i, s in enumerate(shapes)]


class TestFlattenTensors:
    def test_round_trip(self, rng):
        tensors = _named(rng, [(3, 5), (7,), (2, 2, 2)])
        buf = flatten_tensors(tensors)
        recovered = unflatten_tensors(buf)
        for name, original in tensors:
            assert np.array_equal(recovered[name], original)

    def test_partition_divisibility(self, rng):
        tensors = _named(rng, [(3, 5), (7,)])
        buf = flatten_tensors(tensors, num_partitions=4, alignment=8)
        assert buf.numel % (4 * 8) == 0
        parts = buf.partitions(4)
        assert len(parts) == 4
        assert all(p.size == buf.numel // 4 for p in parts)

    def test_partitions_reassemble(self, rng):
        tensors = _named(rng, [(13,), (9,)])
        buf = flatten_tensors(tensors, num_partitions=3)
        assert np.array_equal(np.concatenate(buf.partitions(3)), buf.data)

    def test_padding_is_zero(self, rng):
        tensors = _named(rng, [(5,)])
        buf = flatten_tensors(tensors, num_partitions=2, alignment=8)
        assert buf.padding > 0
        assert np.array_equal(buf.data[-buf.padding:], np.zeros(buf.padding))

    def test_view_is_writable(self, rng):
        tensors = _named(rng, [(4, 4)])
        buf = flatten_tensors(tensors)
        buf.view("p0")[0, 0] = 42.0
        assert buf.read("p0")[0, 0] == 42.0

    def test_write_shape_mismatch_raises(self, rng):
        buf = flatten_tensors(_named(rng, [(4, 4)]))
        with pytest.raises(ValueError, match="shape mismatch"):
            buf.write("p0", np.zeros((2, 2), dtype=np.float32))

    def test_unknown_name_raises(self, rng):
        buf = flatten_tensors(_named(rng, [(4,)]))
        with pytest.raises(KeyError, match="not in flat buffer"):
            buf.read("nope")

    def test_empty_group_raises(self):
        with pytest.raises(ValueError, match="empty"):
            flatten_tensors([])

    def test_duplicate_names_raise(self, rng):
        x = rng.standard_normal(4).astype(np.float32)
        with pytest.raises(ValueError, match="duplicate"):
            flatten_tensors([("a", x), ("a", x)])

    def test_uneven_partition_request_raises(self, rng):
        buf = flatten_tensors(_named(rng, [(8,)]), num_partitions=2)
        with pytest.raises(ValueError, match="equal partitions"):
            buf.partitions(3)

    def test_segment_metadata(self, rng):
        tensors = _named(rng, [(3, 5), (7,)])
        buf = flatten_tensors(tensors)
        seg0 = buf.segment("p0")
        seg1 = buf.segment("p1")
        assert seg0.offset == 0 and seg0.numel == 15 and seg0.shape == (3, 5)
        assert seg1.offset == 15 and seg1.numel == 7


@given(
    shapes=st.lists(
        st.tuples(st.integers(1, 6), st.integers(1, 6)), min_size=1, max_size=5
    ),
    partitions=st.integers(1, 4),
    alignment=st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=60, deadline=None)
def test_flatten_round_trip_property(shapes, partitions, alignment):
    """Property: flatten -> unflatten recovers every tensor exactly, and
    partitions always split evenly with aligned sizes."""
    gen = np.random.default_rng(1)
    tensors = [
        (f"t{i}", gen.standard_normal(s).astype(np.float32))
        for i, s in enumerate(shapes)
    ]
    buf = flatten_tensors(tensors, num_partitions=partitions, alignment=alignment)
    assert buf.numel % partitions == 0
    assert buf.partition_size(partitions) % alignment == 0
    recovered = unflatten_tensors(buf)
    for name, original in tensors:
        assert np.array_equal(recovered[name], original)
