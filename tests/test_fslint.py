"""Filesystem-effect lint (SRC009-SRC012): every crash-consistency
rule fires on an injected bad commit sequence and stays quiet on the
durable protocol ``src/repro`` actually uses.

The safe shapes encode the precision contract: the store's full
fsync-temp / rename / fsync-dir / cleanup sequence, the fault
harness's deliberate torn-temp writes (no publish, so no SRC011), and
the saver's manifest-before-``latest`` order must never be flagged —
the final class pins the whole tree lint-clean under ``--fs``.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.analysis.srclint import lint_source_file, lint_source_tree

REPO_ROOT = Path(__file__).resolve().parent.parent

DURABLE_PUT = """\
import os
def put(path, data):
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(os.path.dirname(path))
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
"""


def lint_snippet(tmp_path, source: str):
    path = tmp_path / "snippet.py"
    path.write_text(source)
    return lint_source_file(path, "snippet.py")


def rules(findings):
    return sorted(d.rule_id for d in findings)


class TestSRC009PublishWithoutDurableTemp:
    def test_unfsynced_publish_fires(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
import os
def put(path, data):
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
        _fsync_dir(os.path.dirname(path))
    except BaseException:
        tmp_cleanup = os.unlink(tmp)
        raise
""")
        assert rules(findings) == ["SRC009"]
        (diag,) = findings
        assert "never fsynced" in diag.message
        assert diag.location.startswith("snippet.py:")

    def test_flush_alone_is_not_durable(self, tmp_path):
        """``flush()`` empties userspace buffers into the page cache —
        it proves nothing about the platter."""
        findings = lint_snippet(tmp_path, """\
import os
def put(path, data):
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
        os.replace(tmp, path)
        _fsync_dir(os.path.dirname(path))
    except BaseException:
        os.unlink(tmp)
        raise
""")
        assert rules(findings) == ["SRC009"]

    def test_fsynced_publish_is_quiet(self, tmp_path):
        assert lint_snippet(tmp_path, DURABLE_PUT) == []

    def test_conditional_fsync_counts_as_dominating(self, tmp_path):
        """The store's ``if self.durable:`` fsync satisfies the lint:
        the off-switch is an operator choice, not a protocol bug."""
        findings = lint_snippet(tmp_path, """\
import os
def put(self, path, data):
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            if self.durable:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        if self.durable:
            _fsync_dir(os.path.dirname(path))
    except BaseException:
        os.unlink(tmp)
        raise
""")
        assert findings == []

    def test_rename_into_tmp_name_is_not_a_publish(self, tmp_path):
        """Staging moves between scratch names never commit anything."""
        assert lint_snippet(tmp_path, """\
import os
def stage(path):
    os.replace(path + ".a.tmp", path + ".b.tmp")
""") == []


class TestSRC010MissingDirFsyncAfterPublish:
    def test_publish_without_dir_fsync_fires(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
import os
def put(path, data):
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        os.unlink(tmp)
        raise
""")
        assert rules(findings) == ["SRC010"]
        (diag,) = findings
        assert "directory fsync" in diag.message

    def test_os_fsync_of_dirfd_satisfies(self, tmp_path):
        """Inlined ``os.open``+``os.fsync`` counts, not just helpers."""
        assert lint_snippet(tmp_path, """\
import os
def put(path, data):
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        dfd = os.open(os.path.dirname(path), os.O_RDONLY)
        os.fsync(dfd)
        os.close(dfd)
    except BaseException:
        os.unlink(tmp)
        raise
""") == []


class TestSRC011TempFileLeakOnException:
    def test_unprotected_publish_leaks_fire(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
import os
def put(path, data):
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(path))
""")
        assert rules(findings) == ["SRC011"]
        (diag,) = findings
        assert "leaks" in diag.message

    def test_finally_cleanup_is_quiet(self, tmp_path):
        assert lint_snippet(tmp_path, """\
import os
def put(path, data):
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(os.path.dirname(path))
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
""") == []

    def test_except_cleanup_is_quiet(self, tmp_path):
        assert lint_snippet(tmp_path, DURABLE_PUT) == []

    def test_fault_injection_torn_write_is_quiet(self, tmp_path):
        """The fault harness writes torn temps *on purpose* and never
        publishes them — a tmp write with no rename in the function is
        not a leak candidate."""
        assert lint_snippet(tmp_path, """\
def on_write(self, rel_path, tmp_path, data):
    with open(tmp_path, "wb") as fh:
        fh.write(data[: max(1, len(data) // 2)])
    raise InjectedCrash(rel_path)
""") == []


class TestSRC012CommitOrderViolation:
    def test_latest_before_manifest_fires(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
def commit(store, tag, entries):
    store.write_text("latest", tag)
    write_manifest(store, tag, entries)
""")
        assert rules(findings) == ["SRC012"]
        (diag,) = findings
        assert "uncommitted tag" in diag.message

    def test_latest_with_no_manifest_at_all_fires(self, tmp_path):
        assert rules(lint_snippet(tmp_path, """\
def advance(store, tag):
    store.write_text(LATEST_FILE, tag)
""")) == ["SRC012"]

    def test_manifest_then_latest_is_quiet(self, tmp_path):
        assert lint_snippet(tmp_path, """\
def commit(store, tag, entries):
    write_manifest(store, tag, entries)
    store.write_text("latest", tag)
""") == []

    def test_reading_latest_is_quiet(self, tmp_path):
        assert lint_snippet(tmp_path, """\
def resolve(store):
    return store.read_text("latest").strip()
""") == []


class TestSuppression:
    def test_disable_comment_silences_fs_rule(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
def advance(store, tag):
    store.write_text("latest", tag)  # srclint: disable=SRC012
""")
        assert findings == []

    def test_unrelated_disable_keeps_firing(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
def advance(store, tag):
    store.write_text("latest", tag)  # srclint: disable=SRC001
""")
        assert rules(findings) == ["SRC012"]


class TestTreeIsClean:
    def test_src_tree_has_no_fs_findings(self):
        """The store durability fix leaves zero SRC009-SRC012 findings
        — with no baseline entries excusing any."""
        report = lint_source_tree(Path(repro.__file__).parent)
        fs_rules = {"SRC009", "SRC010", "SRC011", "SRC012"}
        assert [d for d in report.diagnostics if d.rule_id in fs_rules] == []
        baseline = json.loads(
            (REPO_ROOT / "srclint-baseline.json").read_text()
        )
        assert baseline == {}

    def test_cli_fs_filter_gate_passes(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint-src", "--fs",
             "--format", "json"],
            capture_output=True, text=True, cwd=str(REPO_ROOT),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["ok"] is True
        assert payload["diagnostics"] == []

    def test_cli_fs_filter_reports_only_fs_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("""\
import os
def put(path, data, acc=[]):
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
    os.replace(tmp, path)
""")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint-src", str(bad), "--fs",
             "--format", "json"],
            capture_output=True, text=True, cwd=str(REPO_ROOT),
        )
        assert proc.returncode == 1
        found = {d["rule_id"] for d in json.loads(proc.stdout)["diagnostics"]}
        # SRC004 (mutable default) present in the file but filtered out
        assert found == {"SRC009", "SRC010", "SRC011"}
