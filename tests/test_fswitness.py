"""FS-op witness + crash-state enumeration (UCP032-UCP035).

Three layers, mirroring the lockwitness test split:

- recorder mechanics: activation stack, root labeling, payload
  round-trip;
- the persistence model on hand-built traces: durable commits survive
  every enumerated state, missing fsyncs produce the exact
  publish-observed-before-durable / lost-tag states ALICE predicts;
- the real store end to end: a durable save trace enumerates
  exhaustively with zero findings, a non-durable one fails, and a
  bounded save→convert run reports its cap (UCP035) instead of
  silently passing.
"""

import json

import pytest

from repro.analysis.fswitness import (
    DEFAULT_STATE_CAP,
    FSOp,
    FSOpRecorder,
    apply_ops,
    check_fs_trace,
    enumerate_crash_states,
    fstrace,
    ops_from_payload,
)
from repro.ckpt.manifest import write_manifest
from repro.storage.store import ObjectStore


def rule_ids(report):
    return sorted(d.rule_id for d in report.diagnostics)


def save_tag(store: ObjectStore, tag: str, step_data: bytes) -> None:
    """A minimal committed tag: one data file, manifest, then latest."""
    rel = f"{tag}/model_tp0.npt"
    nbytes = store.put_bytes(rel, step_data)
    import hashlib

    write_manifest(store, tag, {
        "model_tp0.npt": {
            "nbytes": nbytes,
            "sha256": hashlib.sha256(step_data).hexdigest(),
        },
    })
    store.write_text("latest", tag)


class TestRecorder:
    def test_inactive_by_default(self, tmp_path):
        store = ObjectStore(str(tmp_path), durable=True)
        store.put_bytes("a/x.npt", b"payload")
        with fstrace() as rec:
            pass
        assert len(rec) == 0

    def test_durable_put_records_full_commit_sequence(self, tmp_path):
        with fstrace() as rec:
            store = ObjectStore(str(tmp_path), durable=True)
            store.put_bytes("a/x.npt", b"payload")
        kinds = [op.kind for op in rec.ops()]
        assert kinds == ["write", "fsync", "rename", "fsync_dir"]
        write, fsync, rename, fsync_dir = rec.ops()
        assert write.path.endswith(".tmp") and write.path.startswith("s0/")
        assert fsync.path == write.path
        assert (rename.path, rename.dst) == (write.path, "s0/a/x.npt")
        assert fsync_dir.path == "s0/a"

    def test_non_durable_put_skips_fsyncs(self, tmp_path):
        with fstrace() as rec:
            store = ObjectStore(str(tmp_path), durable=False)
            store.put_bytes("a/x.npt", b"payload")
        assert [op.kind for op in rec.ops()] == ["write", "rename"]

    def test_root_fsync_dir_label_has_no_trailing_dot(self, tmp_path):
        """A root-level publish must fsync ``s0``, not ``s0/.`` — the
        enumerator matches dir-fsync paths against ``dirname()`` of the
        published entry."""
        with fstrace() as rec:
            ObjectStore(str(tmp_path), durable=True).write_text("latest", "t")
        assert rec.ops()[-1].path == "s0"

    def test_two_stores_get_distinct_labels(self, tmp_path):
        with fstrace() as rec:
            ObjectStore(str(tmp_path / "ckpt"), durable=True).put_bytes(
                "f.npt", b"a")
            ObjectStore(str(tmp_path / "ucp"), durable=True).put_bytes(
                "f.npt", b"b")
        assert rec.roots() == ["s0", "s1"]
        renames = [op for op in rec.ops() if op.kind == "rename"]
        assert {op.dst for op in renames} == {"s0/f.npt", "s1/f.npt"}

    def test_payload_round_trip_is_lossless(self, tmp_path):
        with fstrace() as rec:
            store = ObjectStore(str(tmp_path), durable=True)
            store.put_bytes("a/x.npt", b"payload")
            store.delete("a/x.npt")
        payload = json.loads(json.dumps(rec.to_payload()))
        assert payload["version"] == 1
        assert payload["roots"] == ["s0"]
        assert ops_from_payload(payload) == rec.ops()

    def test_every_op_carries_its_thread(self, tmp_path):
        """FS effects are stamped with the emitting thread, so the
        interleaving explorer and crash enumeration compose: a crash
        state can be attributed to the schedule that produced it."""
        import threading

        with fstrace() as rec:
            store = ObjectStore(str(tmp_path), durable=True)
            store.put_bytes("a/x.npt", b"payload")
            worker = threading.Thread(
                target=lambda: store.put_bytes("a/y.npt", b"peer"),
                name="peer-writer",
            )
            worker.start()
            worker.join()
        threads = {op.thread for op in rec.ops()}
        assert threading.current_thread().name in threads
        assert "peer-writer" in threads
        # and the identity survives the JSON round trip
        payload = json.loads(json.dumps(rec.to_payload()))
        assert [op.thread for op in ops_from_payload(payload)] == [
            op.thread for op in rec.ops()
        ]

    def test_capture_data_off_keeps_digest_only(self, tmp_path):
        with fstrace(capture_data=False) as rec:
            ObjectStore(str(tmp_path), durable=True).put_bytes("x", b"abc")
        write = rec.ops()[0]
        assert write.data is None and write.nbytes == 3
        assert write.sha256
        raw = json.dumps(rec.to_payload())
        assert "data_b64" not in raw

    def test_unsupported_payload_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            ops_from_payload({"version": 99, "fs_ops": []})


class TestPersistenceModel:
    def test_rename_with_dropped_write_publishes_empty_file(self):
        ops = [
            FSOp(kind="write", path="x.tmp", nbytes=4, data=b"data"),
            FSOp(kind="rename", path="x.tmp", dst="x"),
        ]
        fs = apply_ops(ops, include={1})
        assert fs == {"x": b""}

    def test_torn_write_is_half_prefix(self):
        ops = [FSOp(kind="write", path="x", nbytes=8, data=b"datadata")]
        assert apply_ops(ops, include={0}, torn=0) == {"x": b"data"}

    def test_durable_commit_enumerates_exhaustively_and_small(self, tmp_path):
        with fstrace() as rec:
            save_tag(ObjectStore(str(tmp_path), durable=True),
                     "global_step10", b"\x01" * 64)
        enum = enumerate_crash_states(rec.ops())
        assert not enum.capped
        assert enum.crash_points_covered == enum.crash_points_total
        # every fully-applied state carries the committed tag
        final = enum.states[-1]
        assert final.guaranteed_tags == ("s0/global_step10",)
        # early crash points guarantee nothing
        assert enum.states[0].guaranteed_tags == ()

    def test_guaranteed_tags_progress_across_saves(self, tmp_path):
        with fstrace() as rec:
            store = ObjectStore(str(tmp_path), durable=True)
            save_tag(store, "global_step10", b"\x01" * 64)
            save_tag(store, "global_step20", b"\x02" * 64)
        enum = enumerate_crash_states(rec.ops())
        assert enum.states[-1].guaranteed_tags == (
            "s0/global_step10", "s0/global_step20",
        )

    def test_volatile_write_spawns_torn_variant_and_dedups_drop(self):
        ops = [FSOp(kind="write", path="x", nbytes=4, data=b"data")]
        labels = {s.label for s in enumerate_crash_states(ops).states}
        # drop#0 and durable-only both equal the empty disk already seen
        # at crash@0, so dedup leaves exactly three distinct images:
        # nothing, the full write, the torn write
        assert labels == {"crash@0/all", "crash@1/all", "crash@1/torn#0"}


class TestUCP032PublishBeforeDurable:
    def test_non_durable_trace_fires_both_flavors(self, tmp_path):
        with fstrace() as rec:
            ObjectStore(str(tmp_path), durable=False).put_bytes(
                "a/x.npt", b"payload")
        report = check_fs_trace(rec, enumerate_states=False)
        messages = [d.message for d in report.by_rule("UCP032")]
        assert len(messages) == 2
        assert any("before its bytes were fsynced" in m for m in messages)
        assert any("never made durable" in m for m in messages)

    def test_durable_trace_is_quiet(self, tmp_path):
        with fstrace() as rec:
            ObjectStore(str(tmp_path), durable=True).put_bytes(
                "a/x.npt", b"payload")
        report = check_fs_trace(rec, enumerate_states=False)
        assert report.by_rule("UCP032") == []


class TestUCP033CrashStateRecoveryFailure:
    def test_durable_save_survives_every_state(self, tmp_path):
        with fstrace() as rec:
            store = ObjectStore(str(tmp_path), durable=True)
            save_tag(store, "global_step10", b"\x01" * 64)
            save_tag(store, "global_step20", b"\x02" * 64)
        report = check_fs_trace(rec)
        assert report.ok, report.render_text()
        assert report.diagnostics == []

    def test_non_durable_save_loses_states(self, tmp_path):
        with fstrace() as rec:
            save_tag(ObjectStore(str(tmp_path), durable=False),
                     "global_step10", b"\x01" * 64)
        report = check_fs_trace(rec)
        failures = report.by_rule("UCP033")
        assert failures, report.render_text()
        assert any("crash state" in d.message for d in failures)
        # deterministic labels, no scratch paths
        assert all("/tmp" not in d.message for d in failures)

    def test_deleting_committed_manifest_is_caught(self, tmp_path):
        """An unlink under a committed tag revokes its guarantee — but a
        surviving ``latest`` pointing at the gutted tag must still fail
        recovery in the states where the unlink applied."""
        with fstrace() as rec:
            store = ObjectStore(str(tmp_path), durable=True)
            save_tag(store, "global_step10", b"\x01" * 64)
            store.delete("global_step10/model_tp0.npt")
        report = check_fs_trace(rec)
        assert report.by_rule("UCP033"), report.render_text()


class TestUCP034TmpLeak:
    def test_leftover_tmp_fires_on_clean_exit(self):
        ops = [FSOp(kind="write", path="s0/x.npt.tmp", nbytes=1, data=b"a")]
        report = check_fs_trace(ops, enumerate_states=False)
        (diag,) = report.by_rule("UCP034")
        assert "x.npt.tmp" in diag.message

    def test_crashed_run_excuses_leftover_tmp(self):
        ops = [FSOp(kind="write", path="s0/x.npt.tmp", nbytes=1, data=b"a")]
        report = check_fs_trace(
            ops, enumerate_states=False, clean_exit=False)
        assert report.by_rule("UCP034") == []

    def test_published_and_cleaned_trace_is_quiet(self, tmp_path):
        with fstrace() as rec:
            ObjectStore(str(tmp_path), durable=True).put_bytes("x", b"a")
        report = check_fs_trace(rec, enumerate_states=False)
        assert report.by_rule("UCP034") == []


class TestUCP035BoundedEnumeration:
    def test_state_cap_reported_not_silent(self, tmp_path):
        with fstrace() as rec:
            store = ObjectStore(str(tmp_path), durable=True)
            save_tag(store, "global_step10", b"\x01" * 64)
            save_tag(store, "global_step20", b"\x02" * 64)
        report = check_fs_trace(rec, state_cap=5)
        (diag,) = report.by_rule("UCP035")
        assert diag.severity == "warning"
        assert "5-state cap" in diag.message
        assert report.ok  # warnings alone never fail the gate

    def test_missing_payload_skips_enumeration_with_warning(self, tmp_path):
        with fstrace(capture_data=False) as rec:
            save_tag(ObjectStore(str(tmp_path), durable=True),
                     "global_step10", b"\x01" * 64)
        report = check_fs_trace(rec)
        (diag,) = report.by_rule("UCP035")
        assert "capture_data=False" in diag.message


class TestEndToEnd:
    def test_engine_save_trace_is_exhaustively_survivable(self, tmp_path):
        from repro.dist.topology import ParallelConfig
        from tests.helpers import make_engine

        engine = make_engine(parallel=ParallelConfig(tp=1, dp=1), seed=3)
        engine.train(1)
        import os

        os.environ["REPRO_DURABLE"] = "1"
        try:
            with fstrace() as rec:
                engine.save_checkpoint(str(tmp_path / "ckpt"))
        finally:
            os.environ["REPRO_DURABLE"] = "0"
        enum = enumerate_crash_states(rec.ops())
        assert not enum.capped
        report = check_fs_trace(rec)
        assert report.ok, report.render_text()
        assert report.diagnostics == []

    def test_save_convert_trace_bounded_run_reports_cap(self, tmp_path):
        """The full pipeline trace is too big for an in-suite exhaustive
        sweep (the CI crashfs job runs that); a bounded replay must pass
        with the cap *reported*, never silently."""
        from repro.core.convert import ucp_convert
        from repro.dist.topology import ParallelConfig
        from tests.helpers import make_engine

        engine = make_engine(parallel=ParallelConfig(tp=1, dp=1), seed=3)
        engine.train(1)
        import os

        ck = str(tmp_path / "ckpt")
        out = str(tmp_path / "ucp")
        os.environ["REPRO_DURABLE"] = "1"
        try:
            with fstrace() as rec:
                engine.save_checkpoint(ck)
                ucp_convert(ck, out)
        finally:
            os.environ["REPRO_DURABLE"] = "0"
        assert rec.roots() == ["s0", "s1"]
        report = check_fs_trace(rec, state_cap=64)
        assert report.errors == [], report.render_text()
        (diag,) = report.by_rule("UCP035")
        assert "64-state cap" in diag.message
        assert report.ok


class TestCLIReplay:
    """``repro lint-trace --fs`` (and combined ``--locks --fs``)."""

    def _fs_payload(self, tmp_path, durable):
        with fstrace() as rec:
            save_tag(ObjectStore(str(tmp_path / "ckpt"), durable=durable),
                     "global_step10", b"\x01" * 64)
        return rec.to_payload()

    def _write(self, tmp_path, payload):
        p = tmp_path / "trace.json"
        p.write_text(json.dumps(payload))
        return str(p)

    def test_clean_fs_payload_passes(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write(tmp_path, self._fs_payload(tmp_path, True))
        assert main(["lint-trace", "--fs", "--format", "json", path]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True

    def test_non_durable_fs_payload_fails_with_rules(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write(tmp_path, self._fs_payload(tmp_path, False))
        assert main(["lint-trace", "--fs", path]) == 1
        out = capsys.readouterr().out
        assert "UCP032" in out and "UCP033" in out

    def test_state_cap_flag_bounds_and_reports(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write(tmp_path, self._fs_payload(tmp_path, True))
        assert main(
            ["lint-trace", "--fs", "--state-cap", "3", path]) == 0
        assert "UCP035" in capsys.readouterr().out

    def test_crashed_flag_excuses_tmp_leftovers(self, tmp_path, capsys):
        from repro.cli import main

        payload = FSOpRecorder()
        payload.record_write("r", "x.npt.tmp", b"a")
        path = self._write(tmp_path, payload.to_payload())
        assert main(["lint-trace", "--fs", path]) == 1
        assert "UCP034" in capsys.readouterr().out
        assert main(["lint-trace", "--fs", "--crashed", path]) == 0

    def test_combined_families_one_deterministic_report(
        self, tmp_path, capsys
    ):
        """``--locks --fs`` on a two-family payload: one merged JSON
        report, byte-identical across invocations."""
        from repro.analysis.lockwitness import lockcheck, make_lock
        from repro.cli import main

        with lockcheck(strict=False) as w:
            with make_lock("a"):
                pass
        payload = {
            "locks": w.to_payload(),
            "fs": self._fs_payload(tmp_path, True),
        }
        path = self._write(tmp_path, payload)
        argv = ["lint-trace", "--locks", "--fs", "--format", "json", path]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        report = json.loads(first)
        assert report["ok"] is True
        assert report["subject"] == "locks+fs"

    def test_combined_reports_findings_from_both_families(
        self, tmp_path, capsys
    ):
        from repro.analysis.lockwitness import lockcheck, make_lock
        from repro.cli import main

        with lockcheck(strict=False) as w:
            a, b = make_lock("lock_a"), make_lock("lock_b")
            import threading

            def order(first, second, name):
                def run():
                    with first:
                        with second:
                            pass
                t = threading.Thread(target=run, name=name)
                t.start()
                t.join()

            order(a, b, "loader")
            order(b, a, "verifier")
        payload = {
            "locks": w.to_payload(),
            "fs": self._fs_payload(tmp_path, False),
        }
        path = self._write(tmp_path, payload)
        assert main(["lint-trace", "--locks", "--fs", path]) == 1
        out = capsys.readouterr().out
        assert "UCP029" in out and "UCP032" in out
