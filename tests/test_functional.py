"""Tests for repro.nn.functional: activations, softmax, loss, RoPE."""

import numpy as np
import pytest

from repro.nn import functional as F


class TestGelu:
    def test_zero(self):
        assert F.gelu(np.zeros(3, dtype=np.float32))[0] == 0.0

    def test_large_positive_is_identity(self):
        x = np.array([10.0], dtype=np.float32)
        assert np.isclose(F.gelu(x)[0], 10.0, atol=1e-4)

    def test_large_negative_is_zero(self):
        x = np.array([-10.0], dtype=np.float32)
        assert np.isclose(F.gelu(x)[0], 0.0, atol=1e-4)

    def test_grad_matches_finite_difference(self):
        x = np.linspace(-3, 3, 50, dtype=np.float32)
        eps = 1e-3
        numeric = (F.gelu(x + eps) - F.gelu(x - eps)) / (2 * eps)
        assert np.allclose(F.gelu_grad(x), numeric, atol=1e-3)


class TestSilu:
    def test_zero(self):
        assert F.silu(np.zeros(3, dtype=np.float32))[0] == 0.0

    def test_grad_matches_finite_difference(self):
        x = np.linspace(-4, 4, 60, dtype=np.float32)
        eps = 1e-3
        numeric = (F.silu(x + eps) - F.silu(x - eps)) / (2 * eps)
        assert np.allclose(F.silu_grad(x), numeric, atol=1e-3)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.standard_normal((4, 7)).astype(np.float32)
        assert np.allclose(F.softmax(x).sum(axis=-1), 1.0, atol=1e-6)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((3, 5)).astype(np.float32)
        assert np.allclose(F.softmax(x), F.softmax(x + 100.0), atol=1e-6)

    def test_handles_large_logits(self):
        x = np.array([[1000.0, 0.0]], dtype=np.float32)
        out = F.softmax(x)
        assert np.isfinite(out).all()
        assert np.isclose(out[0, 0], 1.0)


class TestCrossEntropy:
    def test_uniform_logits_give_log_vocab(self):
        vocab = 16
        logits = np.zeros((2, 3, vocab), dtype=np.float32)
        targets = np.zeros((2, 3), dtype=np.int64)
        assert np.isclose(F.cross_entropy(logits, targets), np.log(vocab), atol=1e-5)

    def test_perfect_prediction_near_zero(self):
        logits = np.full((1, 2, 4), -100.0, dtype=np.float32)
        logits[0, :, 1] = 100.0
        targets = np.ones((1, 2), dtype=np.int64)
        assert F.cross_entropy(logits, targets) < 1e-5

    def test_grad_matches_finite_difference(self, rng):
        logits = rng.standard_normal((1, 2, 5)).astype(np.float32)
        targets = rng.integers(0, 5, size=(1, 2))
        analytic = F.cross_entropy_grad(logits.copy(), targets)
        eps = 1e-3
        for b, t, v in [(0, 0, 0), (0, 1, 3), (0, 0, 4)]:
            plus = logits.copy(); plus[b, t, v] += eps
            minus = logits.copy(); minus[b, t, v] -= eps
            numeric = (
                F.cross_entropy(plus, targets) - F.cross_entropy(minus, targets)
            ) / (2 * eps)
            assert np.isclose(analytic[b, t, v], numeric, atol=1e-3)

    def test_grad_rows_sum_to_zero(self, rng):
        logits = rng.standard_normal((2, 3, 7)).astype(np.float32)
        targets = rng.integers(0, 7, size=(2, 3))
        grad = F.cross_entropy_grad(logits, targets)
        assert np.allclose(grad.sum(axis=-1), 0.0, atol=1e-6)


class TestRope:
    def test_tables_shapes(self):
        cos, sin = F.rope_tables(seq_len=10, head_dim=8)
        assert cos.shape == (10, 4) and sin.shape == (10, 4)

    def test_odd_head_dim_raises(self):
        with pytest.raises(ValueError, match="even"):
            F.rope_tables(4, 5)

    def test_position_zero_is_identity(self, rng):
        x = rng.standard_normal((1, 1, 2, 8)).astype(np.float32)
        cos, sin = F.rope_tables(1, 8)
        assert np.allclose(F.apply_rope(x, cos, sin), x, atol=1e-6)

    def test_rotation_preserves_norm(self, rng):
        x = rng.standard_normal((2, 6, 3, 8)).astype(np.float32)
        cos, sin = F.rope_tables(6, 8)
        rotated = F.apply_rope(x, cos, sin)
        assert np.allclose(
            np.linalg.norm(rotated, axis=-1), np.linalg.norm(x, axis=-1), atol=1e-4
        )

    def test_grad_is_inverse_rotation(self, rng):
        x = rng.standard_normal((1, 4, 2, 8)).astype(np.float32)
        cos, sin = F.rope_tables(4, 8)
        # rotating then counter-rotating recovers the input
        assert np.allclose(
            F.apply_rope_grad(F.apply_rope(x, cos, sin), cos, sin), x, atol=1e-5
        )

    def test_relative_position_property(self, rng):
        """RoPE's defining property: <q_m, k_n> depends only on m - n."""
        head_dim = 8
        q = rng.standard_normal(head_dim).astype(np.float32)
        k = rng.standard_normal(head_dim).astype(np.float32)
        cos, sin = F.rope_tables(10, head_dim)

        def dot_at(m, n):
            qm = F.apply_rope(q[None, None, None, :], cos[m : m + 1], sin[m : m + 1])
            kn = F.apply_rope(k[None, None, None, :], cos[n : n + 1], sin[n : n + 1])
            return float((qm * kn).sum())

        assert np.isclose(dot_at(3, 1), dot_at(7, 5), atol=1e-4)
        assert np.isclose(dot_at(2, 2), dot_at(9, 9), atol=1e-4)


class TestCausalMask:
    def test_lower_triangle_is_zero(self):
        mask = F.causal_mask(5)
        assert (mask[np.tril_indices(5)] == 0).all()

    def test_upper_triangle_is_neg_inf(self):
        mask = F.causal_mask(5)
        assert np.isneginf(mask[np.triu_indices(5, k=1)]).all()
