"""Tests for the programmatic inspection API."""

import pytest

from repro.ckpt.consolidated import save_consolidated_checkpoint
from repro.core.convert import ucp_convert
from repro.core.inspect import inspect_directory, verify_directory
from repro.dist.topology import ParallelConfig
from repro.parallel.tp import PATTERN_FRAGMENT, PATTERN_REPLICATED
from repro.storage.store import ObjectStore

from tests.helpers import make_engine


@pytest.fixture
def trained(tmp_path):
    engine = make_engine(parallel=ParallelConfig(tp=2, pp=2, dp=2), seed=7)
    engine.train(2)
    ckpt = str(tmp_path / "ckpt")
    engine.save_checkpoint(ckpt)
    return engine, ckpt, tmp_path


class TestInspectDirectory:
    def test_distributed_summary(self, trained):
        engine, ckpt, _ = trained
        summary = inspect_directory(ckpt)
        assert summary.kind == "distributed"
        assert summary.model.name == "gpt3-mini"
        assert summary.parallel == engine.parallel_cfg
        assert summary.iteration == 2
        assert summary.tag == "global_step2"
        assert summary.num_files == 14  # 13 data files + commit manifest
        assert summary.total_bytes > 0

    def test_distributed_census_covers_all_stages(self, trained):
        engine, ckpt, _ = trained
        summary = inspect_directory(ckpt)
        # pp=2: the census must merge both stages' params
        assert summary.census.total_params == len(engine.layout.shard_specs)
        assert summary.census.counts[PATTERN_FRAGMENT] > 0
        assert summary.census.counts[PATTERN_REPLICATED] > 0

    def test_ucp_summary(self, trained):
        engine, ckpt, tmp = trained
        ucp = str(tmp / "ucp")
        ucp_convert(ckpt, ucp)
        summary = inspect_directory(ucp)
        assert summary.kind == "ucp"
        assert summary.model.name == "gpt3-mini"
        assert summary.parallel == engine.parallel_cfg  # provenance
        assert summary.census.total_params == len(engine.layout.shard_specs)

    def test_consolidated_summary(self, trained):
        engine, _, tmp = trained
        cons = str(tmp / "cons")
        save_consolidated_checkpoint(engine, cons)
        summary = inspect_directory(cons)
        assert summary.kind == "consolidated"
        assert summary.iteration == 2

    def test_unknown_directory(self, tmp_path):
        ObjectStore(str(tmp_path / "junk")).save("random.npt", {"v": 1})
        summary = inspect_directory(str(tmp_path / "junk"))
        assert summary.kind == "unknown"
        assert summary.num_files == 1

    def test_census_element_totals_match_model(self, trained):
        engine, ckpt, _ = trained
        summary = inspect_directory(ckpt)
        expected = 0
        for spec in engine.layout.shard_specs.values():
            numel = 1
            for d in spec.unpadded_shape:
                numel *= d
            expected += numel
        assert summary.census.total_elements == expected


class TestVerifyDirectory:
    def test_clean_directory(self, trained):
        _, ckpt, _ = trained
        report = verify_directory(ckpt)
        assert report.ok
        assert report.total == 14  # 13 data files + commit manifest
        assert report.manifests == 1
        assert not report.missing

    def test_corruption_located(self, trained):
        _, ckpt, _ = trained
        store = ObjectStore(ckpt)
        rel = [f for f in store.list() if "optim" in f][0]
        path = store.base / rel
        data = bytearray(path.read_bytes())
        data[-10] ^= 0x55
        path.write_bytes(bytes(data))
        report = verify_directory(ckpt)
        assert not report.ok
        assert len(report.corrupt) == 1
        assert report.corrupt[0][0] == rel

    def test_empty_directory_not_ok(self, tmp_path):
        report = verify_directory(str(tmp_path))
        assert report.total == 0
        assert not report.ok
