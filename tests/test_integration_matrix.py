"""Integration: the Source x Target transformation matrix (paper Fig 2).

Every source strategy converts to UCP once; every target strategy loads
it and continues training with consistent loss — on all four model
families.
"""

import numpy as np
import pytest

from repro.core.convert import ucp_convert
from repro.dist.topology import ParallelConfig
from repro.core.resume import resume_training

from tests.helpers import make_engine

SOURCES = [
    ParallelConfig(tp=1, pp=1, dp=1),
    ParallelConfig(tp=2, pp=1, dp=2),
    ParallelConfig(tp=1, pp=2, dp=2),
    ParallelConfig(tp=2, pp=2, dp=2),
    ParallelConfig(tp=1, pp=1, dp=4, zero_stage=2),
    ParallelConfig(tp=1, pp=1, dp=2, zero_stage=3),
]

TARGETS = [
    ParallelConfig(tp=1, pp=1, dp=1),
    ParallelConfig(tp=2, pp=2, dp=1),
    ParallelConfig(tp=1, pp=1, dp=4, zero_stage=2),
    ParallelConfig(tp=1, pp=1, dp=2, sp=2),
]


class TestSourceTargetMatrix:
    @pytest.mark.parametrize("source", SOURCES, ids=lambda c: c.describe())
    @pytest.mark.parametrize("target", TARGETS, ids=lambda c: c.describe())
    def test_gpt_any_source_to_any_target(self, tmp_path, source, target):
        src = make_engine(parallel=source, seed=7)
        src.train(2)
        ckpt = str(tmp_path / "ckpt")
        src.save_checkpoint(ckpt)
        continued = [r.loss for r in src.train(2)]

        dst = resume_training(ckpt, target)
        resumed = [r.loss for r in dst.train(2)]
        assert np.allclose(continued, resumed, atol=2e-2), (
            f"{source.describe()} -> {target.describe()}"
        )


class TestAllFamilies:
    @pytest.mark.parametrize(
        "model_name,source,target",
        [
            ("llama-mini", ParallelConfig(tp=2, pp=2, dp=2), ParallelConfig(tp=2, pp=1, dp=2)),
            ("llama-mini", ParallelConfig(tp=2, pp=2, dp=2), ParallelConfig(tp=2, pp=2, dp=1)),
            ("bloom-mini", ParallelConfig(tp=2, pp=4, dp=1), ParallelConfig(tp=2, pp=4, dp=2)),
            ("moe-mini", ParallelConfig(tp=1, pp=2, dp=4), ParallelConfig(tp=2, pp=2, dp=2)),
            ("moe-mini", ParallelConfig(tp=2, pp=1, dp=2), ParallelConfig(tp=1, pp=1, dp=1)),
        ],
    )
    def test_family_resume(self, tmp_path, model_name, source, target):
        src = make_engine(model_name, parallel=source, seed=11, global_batch_size=8)
        src.train(2)
        ckpt = str(tmp_path / "ckpt")
        src.save_checkpoint(ckpt)
        continued = [r.loss for r in src.train(2)]

        dst = resume_training(ckpt, target)
        resumed = [r.loss for r in dst.train(2)]
        assert np.allclose(continued, resumed, atol=2e-2)


class TestStateExactness:
    @pytest.mark.parametrize(
        "model_name", ["gpt3-mini", "llama-mini", "bloom-mini", "moe-mini"]
    )
    def test_resharded_state_is_bit_exact(self, tmp_path, model_name):
        """Beyond loss curves: the resharded fp32/Adam state matches the
        source bit-for-bit on the unpadded regions."""
        source = ParallelConfig(tp=2, pp=2, dp=2)
        target = ParallelConfig(tp=1, pp=4, dp=1)
        src = make_engine(model_name, parallel=source, seed=5, global_batch_size=8)
        src.train(2)
        ckpt, ucp = str(tmp_path / "c"), str(tmp_path / "u")
        src.save_checkpoint(ckpt)
        ucp_convert(ckpt, ucp)

        dst = make_engine(model_name, parallel=target, seed=0, global_batch_size=8)
        dst.load_universal(ucp)
        for kind in ("fp32", "exp_avg", "exp_avg_sq"):
            a = src.zero.consolidated_tensors(kind)
            b = dst.zero.consolidated_tensors(kind)
            for name in a:
                spec = src.layout.spec(name)
                cut = tuple(slice(0, d) for d in spec.unpadded_shape)
                assert np.array_equal(a[name][cut], b[name][cut]), (name, kind)

    def test_double_reshard_round_trip(self, tmp_path):
        """Source -> UCP -> target -> UCP -> source recovers the
        original state exactly (conversion is lossless)."""
        cfg_a = ParallelConfig(tp=2, pp=2, dp=2)
        cfg_b = ParallelConfig(tp=1, pp=1, dp=4, zero_stage=2)
        a = make_engine(parallel=cfg_a, seed=5)
        a.train(2)
        a.save_checkpoint(str(tmp_path / "ck_a"))
        ucp_convert(str(tmp_path / "ck_a"), str(tmp_path / "ucp_a"))

        b = make_engine(parallel=cfg_b, seed=0)
        b.load_universal(str(tmp_path / "ucp_a"))
        b.save_checkpoint(str(tmp_path / "ck_b"))
        ucp_convert(str(tmp_path / "ck_b"), str(tmp_path / "ucp_b"))

        a2 = make_engine(parallel=cfg_a, seed=1)
        a2.load_universal(str(tmp_path / "ucp_b"))
        for kind in ("fp32", "exp_avg", "exp_avg_sq"):
            x = a.zero.consolidated_tensors(kind)
            y = a2.zero.consolidated_tensors(kind)
            for name in x:
                spec = a.layout.spec(name)
                cut = tuple(slice(0, d) for d in spec.unpadded_shape)
                assert np.array_equal(x[name][cut], y[name][cut]), (name, kind)


class TestMixedPrecisionSwitch:
    def test_resume_switches_fp16_to_bf16(self, tmp_path):
        """Paper §3.1: fp32 atoms let a run switch half-precision
        formats across a resume."""
        from repro.optim.mixed_precision import MixedPrecisionPolicy
        from repro.tensor.dtypes import BF16, FP16

        src = make_engine(
            parallel=ParallelConfig(dp=2), seed=7,
            mp_policy=MixedPrecisionPolicy(FP16),
        )
        src.train(2)
        ckpt = str(tmp_path / "ckpt")
        src.save_checkpoint(ckpt)

        dst = resume_training(
            ckpt, ParallelConfig(tp=2), mp_policy=MixedPrecisionPolicy(BF16)
        )
        assert dst.iteration == 2
        results = dst.train(3)
        assert np.isfinite([r.loss for r in results]).all()
