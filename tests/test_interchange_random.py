"""Property-based interchange: random source -> target topology pairs.

The paper's Fig 2 claim, sampled instead of enumerated: for *any*
source and target drawn from the (tp, pp, dp, sp, zero_stage) space,
save -> convert -> load reproduces the optimizer state exactly.  The
sample is seeded for reproducibility; override via environment to
re-roll or widen the sweep::

    UCP_INTERCHANGE_SEED=123 UCP_INTERCHANGE_PAIRS=50 pytest tests/test_interchange_random.py
"""

import os

import numpy as np
import pytest

from repro.core.convert import ucp_convert
from repro.dist.topology import ParallelConfig

from tests.helpers import make_engine

SEED = int(os.environ.get("UCP_INTERCHANGE_SEED", "20250805"))
N_PAIRS = int(os.environ.get("UCP_INTERCHANGE_PAIRS", "25"))

MAX_WORLD = 8  # keep simulated rank counts test-sized


def _sample_config(rng: np.random.Generator) -> ParallelConfig:
    while True:
        zero = int(rng.choice([0, 1, 1, 2, 3]))
        if zero == 3:
            # ZeRO-3 shards parameters too; the repo models it for
            # pure-DP grids only (matching its validation rule)
            cfg = ParallelConfig(
                tp=1, pp=1, dp=int(rng.choice([2, 4])), sp=1, zero_stage=3
            )
        else:
            cfg = ParallelConfig(
                tp=int(rng.choice([1, 2])),
                pp=int(rng.choice([1, 2, 4])),  # gpt3-mini has 4 layers
                dp=int(rng.choice([1, 2])),
                sp=int(rng.choice([1, 2])),
                zero_stage=zero,
            )
        if cfg.world_size <= MAX_WORLD:
            return cfg


def _sample_pairs():
    rng = np.random.default_rng(SEED)
    pairs = []
    while len(pairs) < N_PAIRS:
        source, target = _sample_config(rng), _sample_config(rng)
        if source != target:
            pairs.append((source, target))
    return pairs


PAIRS = _sample_pairs()


class TestRandomizedInterchange:
    @pytest.mark.parametrize(
        "source,target",
        PAIRS,
        ids=[f"{s.describe()}->{t.describe()}" for s, t in PAIRS],
    )
    def test_save_convert_load_is_exact(self, tmp_path, source, target):
        src = make_engine(parallel=source, seed=13)
        src.train(1)
        ckpt, ucp = str(tmp_path / "ckpt"), str(tmp_path / "ucp")
        src.save_checkpoint(ckpt)
        ucp_convert(ckpt, ucp)

        dst = make_engine(parallel=target, seed=0)
        dst.load_universal(ucp)
        for kind in ("fp32", "exp_avg"):
            a = src.zero.consolidated_tensors(kind)
            b = dst.zero.consolidated_tensors(kind)
            assert set(a) == set(b)
            for name in a:
                cut = tuple(
                    slice(0, d)
                    for d in src.layout.spec(name).unpadded_shape
                )
                assert np.array_equal(a[name][cut], b[name][cut]), (
                    f"{source.describe()} -> {target.describe()}: "
                    f"{kind}/{name} diverged"
                )

        # isolation property: after the full train -> save -> convert ->
        # load cycle, no two simulated ranks of either engine may share
        # a writable ndarray base buffer (UCP025/UCP028 stay silent)
        from repro.analysis import check_engine_isolation

        for engine, label in ((src, "source"), (dst, "target")):
            report = check_engine_isolation(engine)
            assert report.ok, (
                f"{label} {source.describe()} -> {target.describe()}:\n"
                f"{report.render_text()}"
            )
