"""The DPOR interleaving explorer: every rule fires on an injection,
clean scenarios prove clean, and everything is deterministic.

The contract under test (the ISSUE's acceptance):

* an injected order-dependent result is caught as UCP036 with a
  delta-shrunk minimal schedule that ``explore(schedule=...)`` replays
  to the same verdict;
* an injected ABBA deadlock is caught as UCP037 (the per-run lock
  witness sees the same hazard as UCP029 — the two layers agree);
* an unsynchronized conflicting access pair is UCP038 even when the
  outputs happen to match;
* a truncated exploration says so (UCP039) instead of silently
  passing, and registry scenarios explore *exhaustively* clean;
* the same seed and caps produce byte-identical JSON reports.
"""

import json

import pytest

from repro.analysis import interleave, lockwitness


# --- injection scenarios ------------------------------------------------


def racy_counter() -> interleave.Scenario:
    """Two lock-free read-modify-write threads: the classic lost
    update.  Serial result is 2; an interleaved one is 1."""

    def fresh() -> interleave.RunCase:
        state = {"n": 0}

        def bump() -> None:
            interleave.access("counter")
            v = state["n"]
            interleave.access("counter", write=True)
            state["n"] = v + 1

        return interleave.RunCase(
            threads=[bump, bump], fingerprint=lambda: str(state["n"])
        )

    return interleave.scenario("racy-counter", fresh)


def abba() -> interleave.Scenario:
    """Opposite-order nested acquires: deadlocks under exactly one
    interleaving family."""

    def fresh() -> interleave.RunCase:
        lock_a = lockwitness.make_lock("A")
        lock_b = lockwitness.make_lock("B")

        def t0() -> None:
            with lock_a:
                with lock_b:
                    pass

        def t1() -> None:
            with lock_b:
                with lock_a:
                    pass

        return interleave.RunCase(threads=[t0, t1], fingerprint=lambda: "ok")

    return interleave.scenario("abba", fresh)


def unsynchronized_but_convergent() -> interleave.Scenario:
    """A write/read pair with no lock whose outputs happen to agree —
    only the happens-before analysis can see the hazard."""

    def fresh() -> interleave.RunCase:
        state = {"x": 1}

        def writer() -> None:
            interleave.access("x", write=True)
            state["x"] = 1  # same value: no divergence, still a race

        def reader() -> None:
            interleave.access("x")
            state["x"]

        return interleave.RunCase(
            threads=[writer, reader], fingerprint=lambda: str(state["x"])
        )

    return interleave.scenario("convergent-race", fresh)


def locked_counter() -> interleave.Scenario:
    """The repaired racy counter: same shape, properly locked."""

    def fresh() -> interleave.RunCase:
        lock = lockwitness.make_lock("counter-lock")
        state = {"n": 0}

        def bump() -> None:
            with lock:
                interleave.access("counter")
                v = state["n"]
                interleave.access("counter", write=True)
                state["n"] = v + 1

        return interleave.RunCase(
            threads=[bump, bump], fingerprint=lambda: str(state["n"])
        )

    return interleave.scenario("locked-counter", fresh)


# --- rule injections ----------------------------------------------------


class TestUCP036Divergence:
    def test_lost_update_is_found_and_shrunk(self):
        result = interleave.explore(racy_counter())
        assert not result.ok
        assert "UCP036" in result.report.rule_ids()
        cx = next(
            c for c in result.counterexamples if c["rule"] == "UCP036"
        )
        # delta-shrunk: keep T0 to its read, preempt to T1, resume —
        # three forced choices, and no shorter prefix still fails
        assert cx["schedule"] == [0, 0, 1]
        assert cx["fingerprint"] != cx["reference_fingerprint"]
        assert cx["trace"] and cx["reference_trace"]

    def test_minimal_schedule_replays_to_same_verdict(self):
        found = interleave.explore(racy_counter())
        cx = next(
            c for c in found.counterexamples if c["rule"] == "UCP036"
        )
        replay = interleave.explore(racy_counter(), schedule=cx["schedule"])
        assert replay.replayed == cx["schedule"]
        assert "UCP036" in replay.report.rule_ids()
        assert not replay.exhaustive  # a replay proves one point, not a space


class TestUCP037Deadlock:
    def test_abba_deadlocks_with_minimal_schedule(self):
        result = interleave.explore(abba())
        assert not result.ok
        rules = result.report.rule_ids()
        assert "UCP037" in rules
        # the per-run lock witness flags the same hazard statically
        assert "UCP029" in rules
        deadlocks = [
            c for c in result.counterexamples if c["rule"] == "UCP037"
        ]
        assert len(deadlocks) == 1  # one cycle, deduped across schedules
        d = next(
            x for x in result.report.diagnostics if x.rule_id == "UCP037"
        )
        assert "all threads blocked" in d.message

    def test_deadlock_schedule_replays(self):
        found = interleave.explore(abba())
        cx = next(
            c for c in found.counterexamples if c["rule"] == "UCP037"
        )
        replay = interleave.explore(abba(), schedule=cx["schedule"])
        assert "UCP037" in replay.report.rule_ids()


class TestUCP038UnsynchronizedPair:
    def test_convergent_race_is_still_reported(self):
        result = interleave.explore(unsynchronized_but_convergent())
        rules = result.report.rule_ids()
        assert "UCP036" not in rules  # outputs agree by construction
        assert "UCP038" in rules
        d = next(
            x for x in result.report.diagnostics if x.rule_id == "UCP038"
        )
        assert "x" in d.message

    def test_locking_silences_it(self):
        result = interleave.explore(locked_counter())
        assert result.ok
        assert result.exhaustive
        assert result.counterexamples == []


class TestUCP039Bounded:
    def test_schedule_cap_is_reported_not_silent(self):
        result = interleave.explore("blockcache", schedules=4)
        assert not result.exhaustive
        assert "UCP039" in result.report.rule_ids()
        d = next(
            x for x in result.report.diagnostics if x.rule_id == "UCP039"
        )
        assert d.severity == "warning"
        assert "4" in d.message  # the cap is named in the report

    def test_preemption_bound_is_reported(self):
        result = interleave.explore(racy_counter(), preemptions=0)
        # the lost update needs a preemption, so the divergence is
        # unreachable (the happens-before race UCP038 is still visible
        # on the serial run) — and the report must say the space was cut
        rules = result.report.rule_ids()
        assert "UCP036" not in rules
        assert "UCP038" in rules
        assert not result.exhaustive
        assert result.preemption_skipped > 0
        assert "UCP039" in rules


# --- clean scenarios and determinism ------------------------------------


class TestRegistryScenarios:
    def test_blockcache_is_exhaustively_clean(self):
        result = interleave.explore("blockcache")
        assert result.ok
        assert result.exhaustive
        assert result.schedules_run > 100  # a real space, not a stub

    def test_inmemory_is_exhaustively_clean(self):
        result = interleave.explore("inmemory")
        assert result.ok
        assert result.exhaustive

    def test_registry_names_build(self):
        assert set(interleave.SCENARIOS) == {
            "blockcache", "convert-verify", "convert-w2", "inmemory"
        }


class TestDeterminism:
    def test_same_exploration_is_byte_identical(self):
        a = interleave.explore(abba()).to_json()
        b = interleave.explore(abba()).to_json()
        assert a == b

    def test_divergence_report_is_byte_identical(self):
        a = interleave.explore(racy_counter()).to_json()
        b = interleave.explore(racy_counter()).to_json()
        assert a == b

    def test_report_json_round_trips(self):
        result = interleave.explore(racy_counter())
        payload = json.loads(result.to_json())
        assert payload["scenario"] == "racy-counter"
        assert payload["counterexamples"][0]["schedule"] == [0, 0, 1]


# --- plumbing -----------------------------------------------------------


class TestLoadSchedule:
    def test_bare_list(self):
        assert interleave.load_schedule("[1, 0, 1]") == [1, 0, 1]

    def test_schedule_object(self):
        assert interleave.load_schedule('{"schedule": [2]}') == [2]

    def test_full_report_takes_first_counterexample(self):
        report = interleave.explore(racy_counter()).to_json()
        assert interleave.load_schedule(report) == [0, 0, 1]

    def test_garbage_is_an_error(self):
        with pytest.raises(interleave.ExploreError):
            interleave.load_schedule('{"no": "schedule"}')


class TestEnvGate:
    def test_env_flag(self, monkeypatch):
        monkeypatch.delenv(interleave.ENV_VAR, raising=False)
        assert not interleave.enabled_from_env()
        monkeypatch.setenv(interleave.ENV_VAR, "0")
        assert not interleave.enabled_from_env()
        monkeypatch.setenv(interleave.ENV_VAR, "1")
        assert interleave.enabled_from_env()

    def test_hooks_are_inert_outside_a_run(self):
        # the zero-cost-when-off contract: calling the yield points
        # with no controller installed must be a no-op
        interleave.access("anything", write=True)
        lock = lockwitness.make_lock("inert")
        with lock:
            pass


class TestUnknownScenario:
    def test_unknown_name_raises(self):
        with pytest.raises(interleave.ExploreError):
            interleave.explore("no-such-scenario")
