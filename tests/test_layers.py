"""Gradient-checked tests for Linear, Embedding, and the norm layers."""

import numpy as np
import pytest

from repro.nn.embedding import Embedding, LearnedPositionalEmbedding, padded_vocab_size
from repro.nn.linear import Linear
from repro.nn.norm import LayerNorm, RMSNorm

from tests.helpers import assert_grad_close, numerical_param_grad


def _loss_fn(forward, probe):
    """Deterministic scalar loss: sum(output * probe)."""
    return lambda: float((forward() * probe).sum())


class TestLinear:
    def _make(self, rng, bias=True):
        w = rng.standard_normal((4, 6)).astype(np.float32) * 0.5
        b = rng.standard_normal(4).astype(np.float32) if bias else None
        return Linear(6, 4, w, b)

    def test_forward_matches_matmul(self, rng):
        layer = self._make(rng)
        x = rng.standard_normal((2, 3, 6)).astype(np.float32)
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(x), expected, atol=1e-6)

    def test_weight_shape_validated(self, rng):
        with pytest.raises(ValueError, match="weight shape"):
            Linear(6, 4, np.zeros((4, 5), dtype=np.float32))

    def test_input_dim_validated(self, rng):
        layer = self._make(rng)
        with pytest.raises(ValueError, match="last dim"):
            layer(np.zeros((2, 5), dtype=np.float32))

    def test_backward_before_forward_raises(self, rng):
        layer = self._make(rng)
        with pytest.raises(RuntimeError, match="before forward"):
            layer.backward(np.zeros((2, 4), dtype=np.float32))

    def test_weight_gradient(self, rng):
        layer = self._make(rng)
        x = rng.standard_normal((2, 6)).astype(np.float32)
        probe = rng.standard_normal((2, 4)).astype(np.float32)
        layer(x)
        layer.backward(probe)
        indices = [0, 7, 23]
        numeric = numerical_param_grad(
            _loss_fn(lambda: layer(x), probe), layer.weight.data, indices
        )
        assert_grad_close(layer.weight.grad.reshape(-1)[indices], numeric)

    def test_bias_gradient(self, rng):
        layer = self._make(rng)
        x = rng.standard_normal((3, 6)).astype(np.float32)
        probe = rng.standard_normal((3, 4)).astype(np.float32)
        layer(x)
        layer.backward(probe)
        assert np.allclose(layer.bias.grad, probe.sum(axis=0), atol=1e-5)

    def test_input_gradient(self, rng):
        layer = self._make(rng, bias=False)
        x = rng.standard_normal((2, 6)).astype(np.float32)
        probe = rng.standard_normal((2, 4)).astype(np.float32)
        layer(x)
        grad_in = layer.backward(probe)
        assert np.allclose(grad_in, probe @ layer.weight.data, atol=1e-6)


class TestPaddedVocab:
    def test_rounds_up(self):
        assert padded_vocab_size(211, 16) == 224

    def test_exact_multiple(self):
        assert padded_vocab_size(224, 16) == 224

    def test_disabled(self):
        assert padded_vocab_size(211, 1) == 211


class TestEmbedding:
    def _make(self, rng, vocab=10, hidden=4, pad_to=16):
        rows = padded_vocab_size(vocab, pad_to)
        w = rng.standard_normal((rows, hidden)).astype(np.float32)
        return Embedding(vocab, hidden, w)

    def test_forward_lookup(self, rng):
        emb = self._make(rng)
        ids = np.array([[0, 3], [9, 1]])
        out = emb(ids)
        assert np.array_equal(out[0, 1], emb.weight.data[3])

    def test_out_of_range_id_raises(self, rng):
        emb = self._make(rng)
        with pytest.raises(IndexError, match="out of range"):
            emb(np.array([[10]]))

    def test_backward_scatter_add(self, rng):
        emb = self._make(rng)
        ids = np.array([[2, 2, 5]])
        emb(ids)
        grad = np.ones((1, 3, 4), dtype=np.float32)
        emb.backward(grad)
        assert np.allclose(emb.weight.grad[2], 2.0)  # token 2 appears twice
        assert np.allclose(emb.weight.grad[5], 1.0)
        assert np.allclose(emb.weight.grad[7], 0.0)

    def test_padding_rows_never_receive_gradient(self, rng):
        emb = self._make(rng, vocab=10, pad_to=16)
        emb(np.array([[0, 9, 5]]))
        emb.backward(np.ones((1, 3, 4), dtype=np.float32))
        assert np.array_equal(emb.weight.grad[10:], np.zeros((6, 4)))


class TestPositionalEmbedding:
    def test_forward_broadcast(self, rng):
        w = rng.standard_normal((8, 4)).astype(np.float32)
        pos = LearnedPositionalEmbedding(8, 4, w)
        out = pos(batch=3, seq_len=5)
        assert out.shape == (3, 5, 4)
        assert np.array_equal(out[0], out[2])

    def test_too_long_raises(self, rng):
        pos = LearnedPositionalEmbedding(8, 4, rng.standard_normal((8, 4)).astype(np.float32))
        with pytest.raises(ValueError, match="exceeds max"):
            pos(batch=1, seq_len=9)

    def test_backward_sums_over_batch(self, rng):
        pos = LearnedPositionalEmbedding(8, 4, rng.standard_normal((8, 4)).astype(np.float32))
        pos(batch=3, seq_len=2)
        pos.backward(np.ones((3, 2, 4), dtype=np.float32))
        assert np.allclose(pos.weight.grad[:2], 3.0)
        assert np.allclose(pos.weight.grad[2:], 0.0)


class TestLayerNorm:
    def test_output_statistics(self, rng):
        ln = LayerNorm(16)
        x = rng.standard_normal((4, 16)).astype(np.float32) * 3 + 5
        out = ln(x)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_input_gradient(self, rng):
        ln = LayerNorm(8)
        ln.weight.data[...] = rng.standard_normal(8).astype(np.float32)
        x = rng.standard_normal((2, 8)).astype(np.float32)
        probe = rng.standard_normal((2, 8)).astype(np.float32)
        ln(x)
        grad_in = ln.backward(probe)
        eps = 1e-3
        for idx in [(0, 0), (1, 3), (0, 7)]:
            plus = x.copy(); plus[idx] += eps
            minus = x.copy(); minus[idx] -= eps
            numeric = float(((ln(plus) - ln(minus)) * probe).sum()) / (2 * eps)
            assert np.isclose(grad_in[idx], numeric, atol=2e-2), idx

    def test_weight_gradient(self, rng):
        ln = LayerNorm(8)
        x = rng.standard_normal((3, 8)).astype(np.float32)
        probe = rng.standard_normal((3, 8)).astype(np.float32)
        ln(x)
        ln.backward(probe)
        numeric = numerical_param_grad(
            _loss_fn(lambda: ln(x), probe), ln.weight.data, [0, 4, 7]
        )
        assert_grad_close(ln.weight.grad[[0, 4, 7]], numeric)


class TestRMSNorm:
    def test_no_bias_parameter(self):
        rms = RMSNorm(8)
        assert [n for n, _ in rms.named_parameters()] == ["weight"]

    def test_unit_rms_output(self, rng):
        rms = RMSNorm(16)
        x = rng.standard_normal((4, 16)).astype(np.float32) * 7
        out = rms(x)
        rms_val = np.sqrt((out * out).mean(axis=-1))
        assert np.allclose(rms_val, 1.0, atol=1e-3)

    def test_input_gradient(self, rng):
        rms = RMSNorm(8)
        rms.weight.data[...] = rng.standard_normal(8).astype(np.float32)
        x = rng.standard_normal((2, 8)).astype(np.float32)
        probe = rng.standard_normal((2, 8)).astype(np.float32)
        rms(x)
        grad_in = rms.backward(probe)
        eps = 1e-3
        for idx in [(0, 0), (1, 5)]:
            plus = x.copy(); plus[idx] += eps
            minus = x.copy(); minus[idx] -= eps
            numeric = float(((rms(plus) - rms(minus)) * probe).sum()) / (2 * eps)
            assert np.isclose(grad_in[idx], numeric, atol=2e-2), idx

    def test_weight_gradient(self, rng):
        rms = RMSNorm(8)
        x = rng.standard_normal((3, 8)).astype(np.float32)
        probe = rng.standard_normal((3, 8)).astype(np.float32)
        rms(x)
        rms.backward(probe)
        numeric = numerical_param_grad(
            _loss_fn(lambda: rms(x), probe), rms.weight.data, [1, 6]
        )
        assert_grad_close(rms.weight.grad[[1, 6]], numeric)
