"""Lock-discipline lint (SRC005-SRC008): every rule fires on an
injection and stays quiet on the idioms the threaded IO layer uses.

The safe-shape tests encode the lint's precision contract: accesses
under ``with <guard>:``, ``# holds:``-annotated helpers, copying
returns, and consistently ordered nesting must never be flagged.  The
seeded-bug tests mutate the *real* ``rangeio`` source — dropping the
lock around a cache mutation and adding an ABBA method pair — and prove
the lint catches exactly those regressions (the static half of the
ISSUE acceptance; the runtime half lives in ``test_lockwitness.py``).
"""

from pathlib import Path

import pytest

from repro.analysis.locks import lint_locks
from repro.analysis.srclint import lint_source_file

import ast

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

GUARDED_CLS = (
    "import threading\n"
    "\n"
    "class Cache:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._blocks = {}  # guarded-by: self._lock\n"
    "\n"
)


def lint_snippet(tmp_path, source: str):
    """Run the full source lint (srclint + locks) over one snippet."""
    path = tmp_path / "snippet.py"
    path.write_text(source)
    return lint_source_file(path, "snippet.py")


def rules(findings):
    return [d.rule_id for d in findings]


class TestSRC005GuardedAttrOutsideLock:
    @pytest.mark.parametrize("body", [
        "    def n(self):\n        return len(self._blocks)\n",
        "    def w(self, k, v):\n        self._blocks[k] = v\n",
        "    def d(self, k):\n        del self._blocks[k]\n",
        "    def m(self, k):\n        return k in self._blocks\n",
    ], ids=["read", "write", "del", "membership"])
    def test_unguarded_access_fires(self, tmp_path, body):
        found = lint_snippet(tmp_path, GUARDED_CLS + body)
        assert rules(found) == ["SRC005"]
        assert "guarded-by self._lock" in found[0].message

    @pytest.mark.parametrize("body", [
        # access under the guard
        "    def n(self):\n        with self._lock:\n"
        "            return len(self._blocks)\n",
        # a *_locked helper excused by its holds contract, called under
        # the lock by its public wrapper
        "    def put(self, k, v):\n        with self._lock:\n"
        "            self._put_locked(k, v)\n"
        "    def _put_locked(self, k, v):  # holds: self._lock\n"
        "        self._blocks[k] = v\n",
        # an unguarded attribute of the same class is not checked
        "    def t(self):\n        self.hits = 1\n",
    ], ids=["with", "holds-helper", "unguarded-attr"])
    def test_safe_shapes_pass(self, tmp_path, body):
        assert lint_snippet(tmp_path, GUARDED_CLS + body) == []

    def test_declaration_line_is_exempt(self, tmp_path):
        # the GUARDED_CLS template itself assigns self._blocks in
        # __init__ with no lock held: the declaration is the exemption
        assert lint_snippet(tmp_path, GUARDED_CLS) == []

    def test_holds_contract_enforced_at_call_sites(self, tmp_path):
        """Calling a ``# holds:`` helper without the lock is SRC005 —
        otherwise the annotation would be a hole, not a contract."""
        src = GUARDED_CLS + (
            "    def put(self, k, v):\n"
            "        self._put_locked(k, v)\n"
            "    def _put_locked(self, k, v):  # holds: self._lock\n"
            "        self._blocks[k] = v\n"
        )
        found = lint_snippet(tmp_path, src)
        assert rules(found) == ["SRC005"]
        assert "self._put_locked()" in found[0].message
        assert "# holds:" in found[0].message

    def test_nested_function_resets_held_locks(self, tmp_path):
        """A closure may run after the ``with`` exits, so lexically held
        locks do not carry into its body."""
        src = GUARDED_CLS + (
            "    def cb(self):\n"
            "        with self._lock:\n"
            "            def inner():\n"
            "                return len(self._blocks)\n"
            "            return inner\n"
        )
        assert rules(lint_snippet(tmp_path, src)) == ["SRC005"]

    def test_holds_annotation_on_multiline_signature(self, tmp_path):
        src = GUARDED_CLS + (
            "    def _put_locked(  # holds: self._lock\n"
            "        self, k, v,\n"
            "    ):\n"
            "        self._blocks[k] = v\n"
        )
        assert lint_snippet(tmp_path, src) == []

    def test_suppression_applies(self, tmp_path):
        src = GUARDED_CLS + (
            "    def n(self):\n"
            "        return len(self._blocks)  # srclint: disable=SRC005\n"
        )
        assert lint_snippet(tmp_path, src) == []


ABBA_CLS = (
    "import threading\n"
    "\n"
    "class Pair:\n"
    "    def __init__(self):\n"
    "        self._lock_a = threading.Lock()\n"
    "        self._lock_b = threading.Lock()\n"
    "\n"
    "    def fwd(self):\n"
    "        with self._lock_a:\n"
    "            with self._lock_b:\n"
    "                pass\n"
    "\n"
)


class TestSRC006InconsistentLockOrder:
    def test_abba_cycle_fires(self, tmp_path):
        src = ABBA_CLS + (
            "    def rev(self):\n"
            "        with self._lock_b:\n"
            "            with self._lock_a:\n"
            "                pass\n"
        )
        found = lint_snippet(tmp_path, src)
        assert rules(found) == ["SRC006"]
        msg = found[0].message
        assert "inconsistent lock order" in msg
        # both witness sites are named with their functions
        assert "fwd()" in msg and "rev()" in msg

    def test_consistent_order_passes(self, tmp_path):
        src = ABBA_CLS + (
            "    def again(self):\n"
            "        with self._lock_a:\n"
            "            with self._lock_b:\n"
            "                pass\n"
        )
        assert lint_snippet(tmp_path, src) == []

    def test_non_lock_contexts_create_no_edges(self, tmp_path):
        """``with open(...)`` nested around/under a lock is not an
        ordering edge — only lock-shaped expressions participate."""
        src = ABBA_CLS + (
            "    def io(self, p):\n"
            "        with open(p) as f:\n"
            "            with self._lock_a:\n"
            "                f.fileno()\n"
            "    def io2(self, p):\n"
            "        with self._lock_a:\n"
            "            with open(p) as f:\n"
            "                f.fileno()\n"
        )
        assert lint_snippet(tmp_path, src) == []

    def test_declared_guard_counts_as_lock_even_without_lock_name(
        self, tmp_path
    ):
        """``self._mu`` is lock-shaped because a guarded-by declaration
        names it, not because of its spelling."""
        src = (
            "import threading\n"
            "\n"
            "class M:\n"
            "    def __init__(self):\n"
            "        self._mu = threading.Lock()\n"
            "        self._lock = threading.Lock()\n"
            "        self._t = {}  # guarded-by: self._mu\n"
            "\n"
            "    def fwd(self):\n"
            "        with self._lock:\n"
            "            with self._mu:\n"
            "                len(self._t)\n"
            "\n"
            "    def rev(self):\n"
            "        with self._mu:\n"
            "            with self._lock:\n"
            "                pass\n"
        )
        assert "SRC006" in rules(lint_snippet(tmp_path, src))

    def test_holds_annotation_seeds_the_held_stack(self, tmp_path):
        """A ``# holds: A`` helper that takes B extends the order graph
        with A -> B even though the ``with A`` is in its caller."""
        src = ABBA_CLS + (
            "    def _drain(self):  # holds: self._lock_b\n"
            "        with self._lock_a:\n"
            "            pass\n"
        )
        assert "SRC006" in rules(lint_snippet(tmp_path, src))


class TestSRC007BlockingCallUnderLock:
    @pytest.mark.parametrize("call", [
        "fut.result()",
        "evt.wait()",
        "time.sleep(1)",
        "store.read_ranges('f', [])",
        "store.write_bytes('f', b'x')",
        "group.all_reduce(xs)",
    ], ids=["result", "wait", "sleep", "read", "write", "collective"])
    def test_blocking_call_fires(self, tmp_path, call):
        src = (
            "def f(lock, fut, evt, time, store, group, xs):\n"
            "    with lock:\n"
            f"        {call}\n"
        )
        found = lint_snippet(tmp_path, src)
        assert rules(found) == ["SRC007"]
        assert "while holding lock" in found[0].message

    @pytest.mark.parametrize("src", [
        # the blocking call happens outside the critical section
        "def f(lock, fut):\n    with lock:\n        pass\n    fut.result()\n",
        # non-blocking work under the lock
        "def f(lock, xs):\n    with lock:\n        return ','.join(xs)\n",
        # a non-lock context manager does not count as held
        "def f(p, fut):\n    with open(p):\n        fut.result()\n",
        # a nested function's body runs later, outside the lock
        "def f(lock, fut):\n    with lock:\n"
        "        def cb():\n            return fut.result()\n"
        "        return cb\n",
    ], ids=["outside", "join", "non-lock", "closure"])
    def test_safe_shapes_pass(self, tmp_path, src):
        assert lint_snippet(tmp_path, src) == []

    def test_suppression_with_rationale_applies(self, tmp_path):
        src = (
            "def f(lock, store):\n"
            "    with lock:\n"
            "        # deliberate: the lock serializes the reads\n"
            "        return store.read_ranges(  # srclint: disable=SRC007\n"
            "            'f', []\n"
            "        )\n"
        )
        assert lint_snippet(tmp_path, src) == []


class TestSRC008GuardedContainerEscape:
    @pytest.mark.parametrize("body", [
        "    def all(self):\n        with self._lock:\n"
        "            return self._blocks\n",
        "    def g(self, k):\n        with self._lock:\n"
        "            return self._blocks[k]\n",
        "    def gd(self, k):\n        with self._lock:\n"
        "            return self._blocks.get(k)\n",
        "    def pair(self):\n        with self._lock:\n"
        "            return self._blocks, 1\n",
        "    def it(self):\n        with self._lock:\n"
        "            yield self._blocks.items()\n",
    ], ids=["direct", "subscript", "get", "tuple", "yield-items"])
    def test_escaping_reference_fires(self, tmp_path, body):
        found = lint_snippet(tmp_path, GUARDED_CLS + body)
        assert rules(found) == ["SRC008"]
        assert "outlives the critical section" in found[0].message

    @pytest.mark.parametrize("body", [
        # copying wrappers sever the alias
        "    def all(self):\n        with self._lock:\n"
        "            return dict(self._blocks)\n",
        "    def ks(self):\n        with self._lock:\n"
        "            return list(self._blocks.keys())\n",
        # scalar results carry no reference
        "    def n(self):\n        with self._lock:\n"
        "            return len(self._blocks)\n",
    ], ids=["dict-copy", "list-copy", "len"])
    def test_copying_returns_pass(self, tmp_path, body):
        assert lint_snippet(tmp_path, GUARDED_CLS + body) == []


class TestSRC013CheckThenAct:
    BAD_FLAG = (
        "    def bad(self, k, v):\n"
        "        closed = self._closed\n"
        "        if closed:\n"
        "            with self._lock:\n"
        "                self._blocks[k] = v\n"
    )
    BAD_DIRECT = (
        "    def bad(self, k, v):\n"
        "        if not self._closed:\n"
        "            with self._lock:\n"
        "                self._blocks[k] = v\n"
    )

    @pytest.mark.parametrize(
        "body", [BAD_FLAG, BAD_DIRECT], ids=["via-local", "direct"]
    )
    def test_check_then_act_fires(self, tmp_path, body):
        source = GUARDED_CLS.replace(
            "    def __init__(self):\n",
            "    def __init__(self):\n"
            "        self._closed = False  # guarded-by: self._lock\n",
        ) + body
        found = lint_snippet(tmp_path, source)
        # the stale read itself is SRC005; the decision built on it is
        # the TOCTOU
        assert "SRC013" in rules(found)
        d = next(f for f in found if f.rule_id == "SRC013")
        assert "self._closed" in d.message
        assert "with self._lock" in d.message

    def test_check_and_act_in_one_section_passes(self, tmp_path):
        body = (
            "    def good(self, k, v):\n"
            "        with self._lock:\n"
            "            if k not in self._blocks:\n"
            "                self._blocks[k] = v\n"
        )
        assert lint_snippet(tmp_path, GUARDED_CLS + body) == []

    def test_decision_without_guarded_act_passes(self, tmp_path):
        # acting on *unguarded* state under the lock is not TOCTOU on
        # the guarded state
        body = (
            "    def ok(self, k):\n"
            "        n = len(self._blocks)\n"
            "        if n:\n"
            "            with self._lock:\n"
            "                pass\n"
        )
        found = lint_snippet(tmp_path, GUARDED_CLS + body)
        assert "SRC013" not in rules(found)

    def test_reassignment_clears_taint(self, tmp_path):
        body = (
            "    def ok(self, k, v):\n"
            "        stale = len(self._blocks)\n"
            "        stale = v\n"
            "        if stale:\n"
            "            with self._lock:\n"
            "                self._blocks[k] = v\n"
        )
        found = lint_snippet(tmp_path, GUARDED_CLS + body)
        assert "SRC013" not in rules(found)


class TestSRC014CompoundAcrossSections:
    def test_split_check_and_insert_fires(self, tmp_path):
        body = (
            "    def bad(self, k, make):\n"
            "        with self._lock:\n"
            "            present = k in self._blocks\n"
            "        if not present:\n"
            "            with self._lock:\n"
            "                self._blocks[k] = make()\n"
        )
        found = lint_snippet(tmp_path, GUARDED_CLS + body)
        assert rules(found) == ["SRC014"]
        assert "spans critical sections" in found[0].message

    def test_same_section_passes(self, tmp_path):
        body = (
            "    def good(self, k, make):\n"
            "        with self._lock:\n"
            "            present = k in self._blocks\n"
            "            if not present:\n"
            "                self._blocks[k] = make()\n"
        )
        assert lint_snippet(tmp_path, GUARDED_CLS + body) == []

    def test_flag_used_without_reentering_passes(self, tmp_path):
        # reading the flag outside any critical section and never
        # touching the container again is fine (a plain stale read)
        body = (
            "    def ok(self, k):\n"
            "        with self._lock:\n"
            "            present = k in self._blocks\n"
            "        return present\n"
        )
        assert lint_snippet(tmp_path, GUARDED_CLS + body) == []


class TestSeededRealSourceBugs:
    """Mutate the real ``rangeio`` source the way a careless refactor
    would, and pin that the lint catches exactly that regression."""

    RANGEIO = REPO_SRC / "storage" / "rangeio.py"

    def _lint(self, source: str):
        return lint_locks(
            "repro/storage/rangeio.py", source, ast.parse(source)
        )

    def test_pristine_rangeio_is_clean(self):
        assert self._lint(self.RANGEIO.read_text()) == []

    def test_unguarded_cache_mutation_is_src005(self):
        """Drop the lock around ``put``'s cache mutation: the
        holds-contract on ``_put_locked`` fires at the call site."""
        source = self.RANGEIO.read_text()
        locked = (
            "        with self._lock:\n"
            "            self._put_locked(rel, start, data)\n"
        )
        assert locked in source
        mutated = source.replace(
            locked, "        self._put_locked(rel, start, data)\n"
        )
        found = self._lint(mutated)
        assert [d.rule_id for d in found] == ["SRC005"]
        assert "self._put_locked()" in found[0].message

    def test_seeded_abba_methods_are_src006(self):
        """Add a reader method pair nesting reader-lock and cache-lock
        in opposite orders — the static ABBA shape."""
        source = self.RANGEIO.read_text() + (
            "\n"
            "    def _seed_flush(self):\n"
            "        with self._io_lock:\n"
            "            with self.cache._lock:\n"
            "                pass\n"
            "\n"
            "    def _seed_warm(self):\n"
            "        with self.cache._lock:\n"
            "            with self._io_lock:\n"
            "                pass\n"
        )
        found = self._lint(source)
        assert [d.rule_id for d in found] == ["SRC006"]
        msg = found[0].message
        assert "_seed_flush()" in msg and "_seed_warm()" in msg

    def test_lock_annotated_modules_are_clean(self):
        """Every module that carries guarded-by annotations lints clean
        under the lock rules (the tree-wide gate is in test_srclint)."""
        for rel in (
            "storage/rangeio.py",
            "ckpt/inmemory.py",
            "ckpt/snapshot.py",
            "analysis/sanitizer.py",
            "analysis/lockwitness.py",
        ):
            path = REPO_SRC / rel
            source = path.read_text()
            assert "guarded-by:" in source, rel
            assert self._lint(source) == [], rel
