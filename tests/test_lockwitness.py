"""Runtime lock witness (UCP029-UCP031): every rule fires on an
injected violation with full witness context, safe shapes stay quiet,
and a recorded payload replays offline through ``check_lock_trace``.

Injection tests run their own *non-strict* witness (pushed inside the
session-wide strict one when ``REPRO_LOCKCHECK=1``), so they work
identically under the checked CI run.  The strict-mode tests pin the
two delivery paths: a main-thread violation raises at the acquisition
site; a worker-thread violation — swallowed by ``threading`` — is
re-raised at ``lockcheck`` exit.
"""

import json
import threading

import pytest

from repro.analysis import lockwitness
from repro.analysis.lockwitness import (
    LockWitnessError,
    check_lock_trace,
    lockcheck,
    make_lock,
)
from repro.storage.rangeio import BlockCache


def _run_named(name, fn):
    t = threading.Thread(target=fn, name=name)
    t.start()
    t.join()


def _abba(lock_a, lock_b):
    """Two sequential threads acquiring the pair in opposite orders.

    Sequential on purpose: the cycle is an *order* property, so no
    actual interleaving (and no real deadlock risk) is needed to
    witness it.
    """

    def loader():
        with lock_a:
            with lock_b:
                pass

    def verifier():
        with lock_b:
            with lock_a:
                pass

    _run_named("loader", loader)
    _run_named("verifier", verifier)


class TestUCP029LockOrderCycle:
    def test_abba_fires_with_both_witness_stacks(self):
        with lockcheck(strict=False) as w:
            _abba(make_lock("lock_a"), make_lock("lock_b"))
        assert [d.rule_id for d in w.report.diagnostics] == ["UCP029"]
        msg = w.report.diagnostics[0].message
        assert "lock-order cycle" in msg
        # BOTH acquisition witnesses: thread names, lock names, stacks
        assert "'loader'" in msg and "'verifier'" in msg
        assert "'lock_a'" in msg and "'lock_b'" in msg
        assert msg.count("test_lockwitness.py") >= 2

    def test_consistent_order_is_quiet(self):
        with lockcheck(strict=False) as w:
            a, b = make_lock("a"), make_lock("b")

            def fwd():
                with a:
                    with b:
                        pass

            _run_named("t1", fwd)
            _run_named("t2", fwd)
        assert w.report.ok

    def test_single_thread_reversal_raises_strict_at_the_site(self):
        """The cycle check runs *before* the acquire, so strict mode
        raises instead of deadlocking."""
        a, b = make_lock("a"), make_lock("b")
        with pytest.raises(LockWitnessError) as exc_info:
            with lockcheck(strict=True):
                with a:
                    with b:
                        pass
                with b:
                    with a:  # the reversal: raises right here
                        pass
        assert "UCP029" in str(exc_info.value)

    def test_worker_thread_violation_surfaces_at_context_exit(self):
        """``threading`` swallows a worker's exception; the strict
        witness re-raises the accumulated report when the context
        exits, so CI cannot miss it."""
        swallowed = []
        orig_hook = threading.excepthook
        threading.excepthook = lambda a: swallowed.append(a.exc_value)
        try:
            with pytest.raises(LockWitnessError) as exc_info:
                with lockcheck(strict=True):
                    _abba(make_lock("a"), make_lock("b"))
        finally:
            threading.excepthook = orig_hook
        assert "UCP029" in str(exc_info.value)
        # the original raise did fire in the worker and died there
        assert [type(e) for e in swallowed] == [LockWitnessError]

    def test_reentrant_reacquire_is_not_an_edge(self):
        with lockcheck(strict=True):
            r = make_lock("r", reentrant=True)
            with r:
                with r:
                    pass

    def test_cycle_reported_once(self):
        with lockcheck(strict=False) as w:
            a, b = make_lock("a"), make_lock("b")
            for _ in range(3):
                _abba(a, b)
        assert [d.rule_id for d in w.report.diagnostics] == ["UCP029"]


class TestUCP030UnguardedStateAccess:
    def test_access_without_lock_fires_with_stack(self):
        with lockcheck(strict=False) as w:
            lock = make_lock("state_lock")
            diag = w.check_guarded(lock, "replica_table")
        assert diag is not None and diag.rule_id == "UCP030"
        assert "without holding 'state_lock'" in diag.message
        assert "at [" in diag.message  # the offending access stack

    def test_access_under_lock_is_quiet(self):
        with lockcheck(strict=False) as w:
            lock = make_lock("state_lock")
            with lock:
                assert w.check_guarded(lock, "replica_table") is None
        assert w.report.ok

    def test_blockcache_bypass_fires(self):
        """The accessor hooks wired into ``BlockCache``: calling a
        ``*_locked`` helper without the lock is the seeded bug."""
        with lockcheck(strict=False) as w:
            cache = BlockCache(1024)
            cache._put_locked("f", 0, b"abc")
        found = [d for d in w.report.diagnostics if d.rule_id == "UCP030"]
        assert len(found) == 1
        assert "BlockCache._blocks" in found[0].message
        assert "rangeio.py" in found[0].message  # the access stack

    def test_blockcache_public_api_is_quiet_under_strict(self):
        with lockcheck(strict=True):
            cache = BlockCache(1024)
            cache.put("f", 0, b"abcdef")
            assert bytes(cache.get("f", 0, 6)) == b"abcdef"
            assert cache.coverage("f", 2, 4)
            assert cache.spans("f") == [(0, 6)]
            cache.record_lookup(True)
            len(cache)
            cache.clear()


class TestUCP031LockHeldAcrossBlockingIO:
    def test_over_budget_io_under_lock_fires(self):
        with lockcheck(strict=False, io_budget_s=0.01) as w:
            with make_lock("meta_lock"):
                diag = w.note_blocking("read_ranges(r0, 4 blocks)", 0.5)
        assert diag is not None and diag.rule_id == "UCP031"
        assert "'meta_lock'" in diag.message
        assert "500.0ms" in diag.message and "budget 10.0ms" in diag.message

    def test_blocking_ok_lock_is_quiet(self):
        """A lock *designed* to serialize IO (RangeReader's) opts out."""
        with lockcheck(strict=False, io_budget_s=0.01) as w:
            with make_lock("io_lock", blocking_ok=True):
                assert w.note_blocking("read", 0.5) is None
        assert w.report.ok

    def test_under_budget_and_unlocked_are_quiet(self):
        with lockcheck(strict=False, io_budget_s=0.01) as w:
            with make_lock("m"):
                assert w.note_blocking("read", 0.005) is None
            assert w.note_blocking("read", 0.5) is None  # nothing held
        assert w.report.ok

    def test_fsync_kind_fires_regardless_of_budget(self):
        """Durable commits report ``kind="fsync"`` with near-zero
        measured time — fsync latency is device-dependent, so no budget
        excuses holding a lock across one."""
        with lockcheck(strict=False, io_budget_s=0.01) as w:
            with make_lock("meta_lock"):
                diag = w.note_blocking(
                    "fsync(tag/model.npt)", 0.0, kind="fsync")
        assert diag is not None and diag.rule_id == "UCP031"
        assert "fsync/flush latency is unbounded" in diag.message
        assert "move the durable write outside" in diag.message

    def test_cache_miss_kind_stays_budgeted(self):
        """The cold-cache-miss path keeps the budget: a fast miss under
        a lock is expected, only a slow one is a finding."""
        with lockcheck(strict=False, io_budget_s=0.01) as w:
            with make_lock("cache_lock"):
                assert w.note_blocking(
                    "read_ranges(r0, 4 blocks)", 0.001,
                    kind="cache-miss") is None
                slow = w.note_blocking(
                    "read_ranges(r0, 4 blocks)", 0.5, kind="cache-miss")
        assert slow is not None and slow.rule_id == "UCP031"

    def test_fsync_under_blocking_ok_lock_is_quiet(self):
        with lockcheck(strict=False, io_budget_s=0.01) as w:
            with make_lock("io_lock", blocking_ok=True):
                assert w.note_blocking("fsync(x)", 0.0, kind="fsync") is None
        assert w.report.ok

    def test_fsync_unlocked_is_quiet(self):
        """The store's own fsync probe with no lock held — the normal
        durable-commit path — must never fire."""
        with lockcheck(strict=False, io_budget_s=0.01) as w:
            assert w.note_blocking("fsync(x)", 0.0, kind="fsync") is None
        assert w.report.ok


class TestPayloadReplay:
    def test_recorded_abba_replays_as_ucp029(self):
        """``to_payload`` -> JSON -> ``check_lock_trace`` carries the
        full diagnosis: cycle, thread names, recorded stacks."""
        with lockcheck(strict=False) as w:
            _abba(make_lock("lock_a"), make_lock("lock_b"))
        payload = json.loads(json.dumps(w.to_payload()))
        report = check_lock_trace(payload)
        assert [d.rule_id for d in report.diagnostics] == ["UCP029"]
        msg = report.diagnostics[0].message
        assert "'loader'" in msg and "'verifier'" in msg
        assert "test_lockwitness.py" in msg

    def test_clean_run_replays_clean(self):
        with lockcheck(strict=True) as w:
            cache = BlockCache(1024)
            cache.put("f", 0, b"abc")
            cache.get("f", 0, 3)
        report = check_lock_trace(w.to_payload())
        assert report.ok
        assert any(e[2] == "access" for e in w.to_payload()["events"])

    def test_unordered_unlocked_accesses_are_a_race(self):
        payload = {
            "version": 1,
            "edges": [],
            "events": [
                [1, "t1", "access", "cache", []],
                [2, "t2", "access", "cache", []],
            ],
        }
        report = check_lock_trace(payload)
        assert [d.rule_id for d in report.diagnostics] == ["UCP030"]
        assert "data race on cache" in report.diagnostics[0].message

    def test_common_lock_suppresses_the_race(self):
        payload = {
            "version": 1,
            "edges": [],
            "events": [
                [1, "t1", "acquire", "L", []],
                [2, "t1", "access", "cache", ["L"]],
                [3, "t1", "release", "L", []],
                [4, "t2", "acquire", "L", []],
                [5, "t2", "access", "cache", ["L"]],
                [6, "t2", "release", "L", []],
            ],
        }
        assert check_lock_trace(payload).ok

    def test_release_acquire_handoff_orders_the_accesses(self):
        """The vector-clock join: an unlocked access that happens-before
        another (through a lock hand-off) is not a race."""
        payload = {
            "version": 1,
            "edges": [],
            "events": [
                [1, "t1", "access", "cache", []],
                [2, "t1", "acquire", "L", []],
                [3, "t1", "release", "L", []],
                [4, "t2", "acquire", "L", []],
                [5, "t2", "access", "cache", []],
            ],
        }
        assert check_lock_trace(payload).ok


class TestActivation:
    def test_env_var_enables(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCKCHECK", raising=False)
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not lockwitness.enabled_from_env()
        monkeypatch.setenv("REPRO_LOCKCHECK", "1")
        assert lockwitness.enabled_from_env()
        monkeypatch.setenv("REPRO_LOCKCHECK", "0")
        assert not lockwitness.enabled_from_env()

    def test_sanitizer_env_implies_lockcheck(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCKCHECK", raising=False)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert lockwitness.enabled_from_env()

    def test_innermost_witness_wins(self):
        """An injection test's permissive witness shields the strict
        session one: the violation lands in the inner report only."""
        with lockcheck(strict=True) as outer:
            with lockcheck(strict=False) as inner:
                _abba(make_lock("a"), make_lock("b"))
            assert [d.rule_id for d in inner.report.diagnostics] == [
                "UCP029"
            ]
            assert outer.report.ok

    def test_off_mode_is_inert(self):
        """With no witness active a WitnessedLock is a plain lock:
        nothing records, nothing checks."""
        base = len(lockwitness._STACK)
        lock = make_lock("plain")
        with lock:
            pass
        lock.acquire()
        lock.release()
        assert len(lockwitness._STACK) == base
        # a later witness sees none of the pre-activation traffic
        with lockcheck(strict=True) as w:
            pass
        assert w.checks == 0 and w.to_payload()["events"] == []

    def test_bare_acquire_release_are_witnessed(self):
        with lockcheck(strict=False) as w:
            lock = make_lock("bare")
            lock.acquire()
            assert w.held_names() == ["bare"]
            lock.release()
            assert w.held_names() == []


class TestCLIReplay:
    """`repro lint-trace --locks` replays a saved witness payload."""

    def _write_payload(self, tmp_path, payload):
        p = tmp_path / "witness-payload.json"
        p.write_text(json.dumps(payload))
        return str(p)

    def test_cycle_payload_fails_and_names_the_rule(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        with lockcheck(strict=False) as w:
            _abba(make_lock("lock_a"), make_lock("lock_b"))
        path = self._write_payload(tmp_path, w.to_payload())
        assert main(["lint-trace", "--locks", path]) == 1
        out = capsys.readouterr().out
        assert "UCP029" in out and "lock_a" in out and "lock_b" in out

    def test_clean_payload_passes(self, tmp_path, capsys):
        from repro.cli import main

        with lockcheck(strict=True) as w:
            a, b = make_lock("a"), make_lock("b")
            with a:
                with b:
                    pass
        path = self._write_payload(tmp_path, w.to_payload())
        assert main(["lint-trace", "--locks", "--format", "json", path]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True
