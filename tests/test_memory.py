"""Tests for the per-rank memory model and its planner integration."""

import pytest

from repro.core.errors import UCPError
from repro.core.resume import ElasticResumeManager
from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.parallel.memory import estimate_rank_memory, fits_budget


def estimate(model="gpt3-350m", parallel=None, **kwargs):
    return estimate_rank_memory(
        get_config(model),
        parallel if parallel is not None else ParallelConfig(),
        **kwargs,
    )


class TestZeroStages:
    def test_zero1_divides_optimizer_state(self):
        base = estimate(parallel=ParallelConfig(dp=1, zero_stage=1))
        wide = estimate(parallel=ParallelConfig(dp=8, zero_stage=1))
        assert wide.optimizer_bytes * 8 <= base.optimizer_bytes * 1.01
        assert wide.params_bytes == base.params_bytes  # stage 1 keeps params

    def test_zero2_additionally_divides_gradients(self):
        s1 = estimate(parallel=ParallelConfig(dp=8, zero_stage=1))
        s2 = estimate(parallel=ParallelConfig(dp=8, zero_stage=2))
        assert s2.grads_bytes < s1.grads_bytes
        assert s2.optimizer_bytes == s1.optimizer_bytes

    def test_zero3_additionally_divides_params(self):
        s2 = estimate(parallel=ParallelConfig(dp=8, zero_stage=2))
        s3 = estimate(parallel=ParallelConfig(dp=8, zero_stage=3))
        assert s3.params_bytes < s2.params_bytes

    def test_zero0_replicates_everything(self):
        s0 = estimate(parallel=ParallelConfig(dp=8, zero_stage=0))
        s1 = estimate(parallel=ParallelConfig(dp=8, zero_stage=1))
        assert s0.optimizer_bytes > s1.optimizer_bytes

    def test_optimizer_dominates_unpartitioned(self):
        """The ZeRO observation: fp32 master + moments are 12 bytes per
        parameter vs 2 for bf16 weights."""
        est = estimate(parallel=ParallelConfig(zero_stage=0))
        assert est.optimizer_bytes == 6 * est.params_bytes


class TestModelParallelism:
    def test_tp_shrinks_params_per_rank(self):
        solo = estimate(parallel=ParallelConfig(tp=1))
        duo = estimate(parallel=ParallelConfig(tp=2))
        assert duo.params_bytes < solo.params_bytes

    def test_pp_shrinks_params_per_rank(self):
        solo = estimate(parallel=ParallelConfig(pp=1))
        deep = estimate(parallel=ParallelConfig(pp=4))
        assert deep.params_bytes < solo.params_bytes

    def test_activations_bounded_by_1f1b(self):
        few = estimate(parallel=ParallelConfig(pp=4), micro_batches=2)
        many = estimate(parallel=ParallelConfig(pp=4), micro_batches=64)
        # in-flight activations cap at pp, not micro_batches
        assert many.activations_bytes <= few.activations_bytes * 2.01

    def test_longer_sequences_cost_more(self):
        short = estimate(seq_len=512)
        long = estimate(seq_len=4096)
        assert long.activations_bytes > short.activations_bytes


class TestBudget:
    def test_paper_scale_needs_parallelism(self):
        """GPT-3 350M with unpartitioned Adam overflows a 6 GB GPU but
        fits with ZeRO across 8 ranks."""
        cfg = get_config("gpt3-350m")
        assert not fits_budget(cfg, ParallelConfig(zero_stage=0), budget_gb=6.0)
        assert fits_budget(
            cfg, ParallelConfig(dp=8, zero_stage=2), budget_gb=6.0
        )

    def test_bad_budget_raises(self):
        with pytest.raises(ValueError, match="positive"):
            fits_budget(get_config("gpt3-mini"), ParallelConfig(), budget_gb=0)

    def test_total_is_component_sum(self):
        est = estimate()
        assert est.total_bytes == (
            est.params_bytes + est.grads_bytes
            + est.optimizer_bytes + est.activations_bytes
        )


class TestPlannerIntegration:
    def test_budget_steers_plan_to_sharded_configs(self, tmp_path):
        manager = ElasticResumeManager(
            str(tmp_path), global_batch_size=256,
            memory_budget_gb=10.0, model_cfg=get_config("gpt3-350m"),
        )
        source = ParallelConfig(tp=1, pp=1, dp=8, zero_stage=2)
        plan = manager.plan_resize(source, new_world=8)
        assert manager._fits_memory(plan.target)
        assert plan.target.dp >= 4  # replication-heavy configs rejected

    def test_infeasible_budget_raises(self, tmp_path):
        manager = ElasticResumeManager(
            str(tmp_path), global_batch_size=8,
            memory_budget_gb=0.001, model_cfg=get_config("gpt3-350m"),
        )
        with pytest.raises(UCPError, match="budget"):
            manager.plan_resize(ParallelConfig(dp=8, zero_stage=2), new_world=8)

    def test_budget_requires_model_cfg(self, tmp_path):
        with pytest.raises(ValueError, match="model_cfg"):
            ElasticResumeManager(str(tmp_path), 8, memory_budget_gb=10.0)
