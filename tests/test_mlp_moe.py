"""Gradient-checked tests for the MLP, SwiGLU, and MoE layers."""

import numpy as np
import pytest

from repro.nn.mlp import MLP, SwiGLUMLP
from repro.nn.moe import MoELayer, TopKRouter

from tests.helpers import assert_grad_close, numerical_param_grad


def make_mlp(rng, hidden=6, inter=10, bias=True):
    return MLP(
        hidden, inter,
        up_weight=rng.standard_normal((inter, hidden)).astype(np.float32) * 0.4,
        down_weight=rng.standard_normal((hidden, inter)).astype(np.float32) * 0.4,
        up_bias=rng.standard_normal(inter).astype(np.float32) * 0.1 if bias else None,
        down_bias=rng.standard_normal(hidden).astype(np.float32) * 0.1 if bias else None,
    )


def make_swiglu(rng, hidden=6, inter=10):
    return SwiGLUMLP(
        hidden, inter,
        gate_weight=rng.standard_normal((inter, hidden)).astype(np.float32) * 0.4,
        up_weight=rng.standard_normal((inter, hidden)).astype(np.float32) * 0.4,
        down_weight=rng.standard_normal((hidden, inter)).astype(np.float32) * 0.4,
    )


def make_moe(rng, hidden=6, inter=8, experts=4, top_k=2):
    return MoELayer(
        hidden, inter, experts, top_k,
        router_weight=rng.standard_normal((experts, hidden)).astype(np.float32) * 0.4,
        gate_weight=rng.standard_normal((experts, inter, hidden)).astype(np.float32) * 0.4,
        up_weight=rng.standard_normal((experts, inter, hidden)).astype(np.float32) * 0.4,
        down_weight=rng.standard_normal((experts, hidden, inter)).astype(np.float32) * 0.4,
    )


class TestMLP:
    def test_output_shape(self, rng):
        mlp = make_mlp(rng)
        x = rng.standard_normal((2, 3, 6)).astype(np.float32)
        assert mlp(x).shape == (2, 3, 6)

    def test_up_weight_gradient(self, rng):
        mlp = make_mlp(rng)
        x = rng.standard_normal((2, 6)).astype(np.float32)
        probe = rng.standard_normal((2, 6)).astype(np.float32)
        mlp(x)
        mlp.backward(probe)
        indices = [0, 29, 59]
        numeric = numerical_param_grad(
            lambda: float((mlp(x) * probe).sum()), mlp.up.weight.data, indices
        )
        assert_grad_close(mlp.up.weight.grad.reshape(-1)[indices], numeric)

    def test_input_gradient(self, rng):
        mlp = make_mlp(rng, bias=False)
        x = rng.standard_normal((1, 6)).astype(np.float32)
        probe = rng.standard_normal((1, 6)).astype(np.float32)
        mlp(x)
        grad_in = mlp.backward(probe)
        eps = 1e-3
        for j in [0, 3, 5]:
            plus = x.copy(); plus[0, j] += eps
            minus = x.copy(); minus[0, j] -= eps
            numeric = float(((mlp(plus) - mlp(minus)) * probe).sum()) / (2 * eps)
            assert np.isclose(grad_in[0, j], numeric, atol=2e-2)


class TestSwiGLU:
    def test_gate_weight_gradient(self, rng):
        mlp = make_swiglu(rng)
        x = rng.standard_normal((2, 6)).astype(np.float32)
        probe = rng.standard_normal((2, 6)).astype(np.float32)
        mlp(x)
        mlp.backward(probe)
        indices = [0, 17, 59]
        numeric = numerical_param_grad(
            lambda: float((mlp(x) * probe).sum()), mlp.gate.weight.data, indices
        )
        assert_grad_close(mlp.gate.weight.grad.reshape(-1)[indices], numeric)

    def test_down_weight_gradient(self, rng):
        mlp = make_swiglu(rng)
        x = rng.standard_normal((2, 6)).astype(np.float32)
        probe = rng.standard_normal((2, 6)).astype(np.float32)
        mlp(x)
        mlp.backward(probe)
        indices = [0, 31]
        numeric = numerical_param_grad(
            lambda: float((mlp(x) * probe).sum()), mlp.down.weight.data, indices
        )
        assert_grad_close(mlp.down.weight.grad.reshape(-1)[indices], numeric)


class TestRouter:
    def test_gates_sum_to_one(self, rng):
        router = TopKRouter(6, 4, 2, rng.standard_normal((4, 6)).astype(np.float32))
        x = rng.standard_normal((5, 6)).astype(np.float32)
        _, gates, probs = router(x)
        assert np.allclose(gates.sum(axis=-1), 1.0, atol=1e-6)
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-6)

    def test_topk_selects_highest(self, rng):
        router = TopKRouter(6, 4, 2, rng.standard_normal((4, 6)).astype(np.float32))
        x = rng.standard_normal((5, 6)).astype(np.float32)
        topk, _, probs = router(x)
        for row in range(5):
            selected = probs[row, topk[row]]
            unselected = np.delete(probs[row], topk[row])
            assert selected.min() >= unselected.max() - 1e-7

    def test_selection_is_deterministic(self, rng):
        w = rng.standard_normal((4, 6)).astype(np.float32)
        x = rng.standard_normal((7, 6)).astype(np.float32)
        a = TopKRouter(6, 4, 2, w.copy())(x.copy())[0]
        b = TopKRouter(6, 4, 2, w.copy())(x.copy())[0]
        assert np.array_equal(a, b)

    def test_bad_topk_raises(self, rng):
        with pytest.raises(ValueError, match="top_k"):
            TopKRouter(6, 4, 5, rng.standard_normal((4, 6)).astype(np.float32))


class TestMoE:
    def test_output_shape(self, rng):
        moe = make_moe(rng)
        x = rng.standard_normal((2, 3, 6)).astype(np.float32)
        assert moe(x).shape == (2, 3, 6)

    def test_weight_shapes_validated(self, rng):
        with pytest.raises(ValueError, match="gate_weight shape"):
            MoELayer(
                6, 8, 4, 2,
                router_weight=np.zeros((4, 6), dtype=np.float32),
                gate_weight=np.zeros((4, 9, 6), dtype=np.float32),
                up_weight=np.zeros((4, 8, 6), dtype=np.float32),
                down_weight=np.zeros((4, 6, 8), dtype=np.float32),
            )

    def test_expert_weight_gradient(self, rng):
        moe = make_moe(rng, experts=3, top_k=2)
        x = rng.standard_normal((1, 4, 6)).astype(np.float32)
        probe = rng.standard_normal((1, 4, 6)).astype(np.float32)
        moe(x)
        moe.backward(probe)
        analytic = moe.up_weight.grad.reshape(-1)
        # probe indices in experts that actually received tokens
        nonzero = np.nonzero(analytic)[0]
        indices = list(nonzero[:3]) if nonzero.size else [0]
        numeric = numerical_param_grad(
            lambda: float((moe(x) * probe).sum()), moe.up_weight.data, indices,
            eps=2e-3,
        )
        assert_grad_close(analytic[indices], numeric, rtol=1e-1)

    def test_router_weight_gradient(self, rng):
        moe = make_moe(rng, experts=3, top_k=2)
        x = rng.standard_normal((1, 4, 6)).astype(np.float32)
        probe = rng.standard_normal((1, 4, 6)).astype(np.float32)
        moe(x)
        moe.backward(probe)
        analytic = moe.router.proj.weight.grad.reshape(-1)
        indices = [0, 7, 17]
        numeric = numerical_param_grad(
            lambda: float((moe(x) * probe).sum()),
            moe.router.proj.weight.data,
            indices,
            eps=2e-3,
        )
        assert_grad_close(analytic[indices], numeric, rtol=1.5e-1, atol=1e-3)

    def test_input_gradient(self, rng):
        moe = make_moe(rng)
        x = rng.standard_normal((1, 3, 6)).astype(np.float32)
        probe = rng.standard_normal((1, 3, 6)).astype(np.float32)
        moe(x)
        grad_in = moe.backward(probe)
        assert grad_in.shape == x.shape
        eps = 2e-3
        for idx in [(0, 0, 0), (0, 2, 4)]:
            plus = x.copy(); plus[idx] += eps
            minus = x.copy(); minus[idx] -= eps
            numeric = float(((moe(plus) - moe(minus)) * probe).sum()) / (2 * eps)
            assert np.isclose(grad_in[idx], numeric, atol=5e-2), idx

    def test_unused_expert_gets_zero_gradient(self, rng):
        """An expert that routes no tokens must accumulate zero grads."""
        moe = make_moe(rng, experts=4, top_k=1)
        x = rng.standard_normal((1, 2, 6)).astype(np.float32)  # 2 tokens, <=2 experts used
        moe(x)
        moe.backward(np.ones((1, 2, 6), dtype=np.float32))
        used_rows = moe.up_weight.grad.reshape(4, -1).any(axis=1)
        assert used_rows.sum() <= 2
