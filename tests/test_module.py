"""Tests for repro.nn.module: Parameter/Module/ModuleList plumbing."""

import numpy as np
import pytest

from repro.nn.module import Module, ModuleList, Parameter


class Leaf(Module):
    def __init__(self, size=3):
        super().__init__()
        self.w = Parameter(np.ones(size, dtype=np.float32))


class Tree(Module):
    def __init__(self):
        super().__init__()
        self.a = Leaf(2)
        self.b = Leaf(3)
        self.items = ModuleList([Leaf(4), Leaf(5)])


class TestParameter:
    def test_data_cast_to_float32(self):
        p = Parameter(np.arange(3, dtype=np.float64))
        assert p.data.dtype == np.float32

    def test_grad_accumulates(self):
        p = Parameter(np.zeros(3, dtype=np.float32))
        p.accumulate_grad(np.ones(3, dtype=np.float32))
        p.accumulate_grad(np.ones(3, dtype=np.float32))
        assert np.array_equal(p.grad, np.full(3, 2.0))

    def test_grad_shape_mismatch_raises(self):
        p = Parameter(np.zeros(3, dtype=np.float32))
        with pytest.raises(ValueError, match="gradient shape"):
            p.accumulate_grad(np.ones(4, dtype=np.float32))

    def test_zero_grad(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        p.accumulate_grad(np.ones(2, dtype=np.float32))
        p.zero_grad()
        assert p.grad is None

    def test_numel(self):
        assert Parameter(np.zeros((2, 3), dtype=np.float32)).numel == 6


class TestModuleNaming:
    def test_hierarchical_names(self):
        tree = Tree()
        names = [name for name, _ in tree.named_parameters()]
        assert names == ["a.w", "b.w", "items.0.w", "items.1.w"]

    def test_num_parameters(self):
        assert Tree().num_parameters() == 2 + 3 + 4 + 5

    def test_zero_grad_recurses(self):
        tree = Tree()
        for p in tree.parameters():
            p.accumulate_grad(np.ones(p.shape, dtype=np.float32))
        tree.zero_grad()
        assert all(p.grad is None for p in tree.parameters())


class TestStateDict:
    def test_round_trip(self):
        tree = Tree()
        state = tree.state_dict()
        state["a.w"][...] = 7.0
        tree.load_state_dict(state)
        assert np.array_equal(tree.a.w.data, np.full(2, 7.0))

    def test_state_dict_is_a_copy(self):
        tree = Tree()
        tree.state_dict()["a.w"][...] = 99.0
        assert tree.a.w.data[0] == 1.0

    def test_strict_missing_key_raises(self):
        tree = Tree()
        state = tree.state_dict()
        del state["b.w"]
        with pytest.raises(KeyError, match="missing"):
            tree.load_state_dict(state)

    def test_strict_unexpected_key_raises(self):
        tree = Tree()
        state = tree.state_dict()
        state["ghost"] = np.zeros(1, dtype=np.float32)
        with pytest.raises(KeyError, match="unexpected"):
            tree.load_state_dict(state)

    def test_non_strict_ignores_extras(self):
        tree = Tree()
        state = tree.state_dict()
        state["ghost"] = np.zeros(1, dtype=np.float32)
        tree.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        tree = Tree()
        state = tree.state_dict()
        state["a.w"] = np.zeros(99, dtype=np.float32)
        with pytest.raises(ValueError, match="shape mismatch"):
            tree.load_state_dict(state)


class TestModuleList:
    def test_len_and_index(self):
        items = ModuleList([Leaf(1), Leaf(2)])
        assert len(items) == 2
        assert items[1].w.numel == 2

    def test_iteration_order(self):
        items = ModuleList([Leaf(1), Leaf(2), Leaf(3)])
        assert [m.w.numel for m in items] == [1, 2, 3]

    def test_append_registers_child(self):
        items = ModuleList()
        items.append(Leaf(6))
        assert [n for n, _ in items.named_parameters()] == ["0.w"]
