"""Tests for Adam, grad clipping, LR schedules, and mixed precision."""

import numpy as np
import pytest

from repro.optim.adam import Adam, AdamParamState
from repro.optim.grad_clip import clip_grad_norm, global_grad_norm
from repro.optim.lr_schedule import ConstantLRSchedule, CosineLRSchedule
from repro.optim.mixed_precision import LossScaler, MixedPrecisionPolicy
from repro.tensor.dtypes import BF16, FP16, FP32


class TestAdam:
    def _run_steps(self, adam, params, grads_seq, state=None):
        state = state if state is not None else AdamParamState.zeros(params.size)
        for grads in grads_seq:
            adam.step(params, grads, state)
        return params, state

    def test_single_step_matches_reference(self):
        """First step with beta-corrected moments: delta = -lr * g/(|g|+eps)."""
        adam = Adam(lr=0.1, weight_decay=0.0)
        params = np.zeros(3, dtype=np.float32)
        grads = np.array([1.0, -2.0, 0.5], dtype=np.float32)
        self._run_steps(adam, params, [grads])
        expected = -0.1 * np.sign(grads)
        assert np.allclose(params, expected, atol=1e-4)

    def test_descends_on_quadratic(self):
        adam = Adam(lr=0.05, weight_decay=0.0)
        params = np.array([5.0, -3.0], dtype=np.float32)
        state = AdamParamState.zeros(2)
        for _ in range(300):
            adam.step(params, 2 * params, state)
        assert np.abs(params).max() < 0.2

    def test_partitioned_update_equals_full_update(self, rng):
        """The ZeRO-critical property: slicing commutes with the update."""
        adam = Adam()
        full = rng.standard_normal(64).astype(np.float32)
        grads = [rng.standard_normal(64).astype(np.float32) for _ in range(4)]

        whole = full.copy()
        whole_state = AdamParamState.zeros(64)
        for g in grads:
            adam.step(whole, g, whole_state)

        parts = [full[:32].copy(), full[32:].copy()]
        states = [AdamParamState.zeros(32), AdamParamState.zeros(32)]
        for g in grads:
            adam.step(parts[0], g[:32], states[0])
            adam.step(parts[1], g[32:], states[1])

        assert np.array_equal(np.concatenate(parts), whole)
        assert np.array_equal(
            np.concatenate([s.exp_avg for s in states]), whole_state.exp_avg
        )

    def test_weight_decay_is_decoupled(self):
        adam = Adam(lr=0.1, weight_decay=0.5)
        params = np.array([1.0], dtype=np.float32)
        adam.step(params, np.zeros(1, dtype=np.float32), AdamParamState.zeros(1))
        # zero grad: only decay applies: p -= lr * wd * p
        assert np.isclose(params[0], 1.0 - 0.1 * 0.5)

    def test_shape_mismatch_raises(self):
        adam = Adam()
        with pytest.raises(ValueError, match="shape"):
            adam.step(
                np.zeros(3, dtype=np.float32),
                np.zeros(4, dtype=np.float32),
                AdamParamState.zeros(3),
            )

    def test_hyperparameters_round_trip(self):
        adam = Adam(lr=1e-3, beta1=0.8, beta2=0.9, eps=1e-7, weight_decay=0.01)
        clone = Adam.from_hyperparameters(adam.hyperparameters())
        assert clone.hyperparameters() == adam.hyperparameters()

    def test_bad_betas_raise(self):
        with pytest.raises(ValueError, match="betas"):
            Adam(beta1=1.0)

    def test_state_clone_is_deep(self):
        state = AdamParamState.zeros(4)
        clone = state.clone()
        state.exp_avg[0] = 5.0
        assert clone.exp_avg[0] == 0.0


class TestGradClip:
    def test_norm_computation(self):
        grads = [np.array([3.0], dtype=np.float32), np.array([4.0], dtype=np.float32)]
        assert np.isclose(global_grad_norm(grads), 5.0)

    def test_no_clip_below_threshold(self):
        grads = [np.array([0.3, 0.4], dtype=np.float32)]
        norm = clip_grad_norm(grads, 1.0)
        assert np.isclose(norm, 0.5)
        assert np.allclose(grads[0], [0.3, 0.4])

    def test_clip_scales_to_max_norm(self):
        grads = [np.array([3.0], dtype=np.float32), np.array([4.0], dtype=np.float32)]
        clip_grad_norm(grads, 1.0)
        assert np.isclose(global_grad_norm(grads), 1.0, atol=1e-4)

    def test_bad_max_norm_raises(self):
        with pytest.raises(ValueError, match="positive"):
            clip_grad_norm([np.ones(2, dtype=np.float32)], 0.0)


class TestLRSchedules:
    def test_constant(self):
        sched = ConstantLRSchedule(3e-4)
        assert sched.lr_at(0) == sched.lr_at(10000) == 3e-4

    def test_warmup_ramps_linearly(self):
        sched = CosineLRSchedule(max_lr=1.0, min_lr=0.0, warmup_steps=10, total_steps=100)
        assert np.isclose(sched.lr_at(4), 0.5)
        assert np.isclose(sched.lr_at(9), 1.0)

    def test_cosine_hits_floor(self):
        sched = CosineLRSchedule(max_lr=1.0, min_lr=0.1, warmup_steps=0, total_steps=100)
        assert np.isclose(sched.lr_at(100), 0.1)
        assert np.isclose(sched.lr_at(10**6), 0.1)

    def test_monotone_decay_after_warmup(self):
        sched = CosineLRSchedule(max_lr=1.0, min_lr=0.0, warmup_steps=5, total_steps=50)
        lrs = [sched.lr_at(s) for s in range(5, 50)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_negative_step_raises(self):
        with pytest.raises(ValueError, match=">= 0"):
            ConstantLRSchedule(1.0).lr_at(-1)

    def test_warmup_longer_than_total_raises(self):
        with pytest.raises(ValueError, match="shorter"):
            CosineLRSchedule(1.0, 0.0, warmup_steps=100, total_steps=100)

    def test_resume_continuity(self):
        """The resumed-schedule property: lr is a pure function of step."""
        sched = CosineLRSchedule(max_lr=1.0, min_lr=0.0, warmup_steps=10, total_steps=200)
        assert sched.lr_at(137) == CosineLRSchedule(1.0, 0.0, 10, 200).lr_at(137)


class TestMixedPrecision:
    def test_fp32_working_copy_is_identity(self, rng):
        policy = MixedPrecisionPolicy(FP32)
        x = rng.standard_normal(10).astype(np.float32)
        assert np.array_equal(policy.working_copy(x), x)

    def test_bf16_working_copy_truncates(self, rng):
        policy = MixedPrecisionPolicy(BF16)
        x = rng.standard_normal(100).astype(np.float32)
        copy = policy.working_copy(x)
        assert (copy.view(np.uint32) & 0xFFFF).max() == 0

    def test_policy_round_trip(self):
        policy = MixedPrecisionPolicy(FP16)
        assert MixedPrecisionPolicy.from_dict(policy.to_dict()).compute_dtype is FP16


class TestLossScaler:
    def test_overflow_halves_scale(self):
        scaler = LossScaler(init_scale=1024.0)
        scaler.update(found_overflow=True)
        assert scaler.scale == 512.0

    def test_growth_after_interval(self):
        scaler = LossScaler(init_scale=8.0, growth_interval=3)
        for _ in range(3):
            scaler.update(found_overflow=False)
        assert scaler.scale == 16.0

    def test_overflow_resets_growth_counter(self):
        scaler = LossScaler(init_scale=8.0, growth_interval=2)
        scaler.update(False)
        scaler.update(True)
        scaler.update(False)
        assert scaler.scale == 4.0  # halved once, no growth yet

    def test_scale_floor(self):
        scaler = LossScaler(init_scale=2.0, min_scale=1.0)
        for _ in range(5):
            scaler.update(True)
        assert scaler.scale == 1.0

    def test_detects_inf_and_nan(self):
        scaler = LossScaler()
        assert scaler.check_overflow(np.array([np.inf], dtype=np.float32))
        assert scaler.check_overflow(np.array([np.nan], dtype=np.float32))
        assert not scaler.check_overflow(np.array([1e30], dtype=np.float32))

    def test_state_round_trip(self):
        scaler = LossScaler(init_scale=4096.0)
        scaler.update(True)
        other = LossScaler()
        other.load_state_dict(scaler.state_dict())
        assert other.scale == scaler.scale
