"""Tests for TP shard specs, PP stage plans, and the flat layouts."""

import pytest

from repro.dist.topology import ParallelConfig
from repro.models import build_model, get_config
from repro.parallel.layout import ModelParallelLayout
from repro.parallel.pp import build_stage_plan
from repro.parallel.sharding import ExpertFragment, FusedSectionsFragment, VocabFragment
from repro.parallel.tp import (
    PATTERN_FRAGMENT,
    PATTERN_REPLICATED,
    ShardSpec,
    build_shard_specs,
)

FAMILIES = ["gpt3-mini", "llama-mini", "bloom-mini", "moe-mini"]


class TestShardSpecs:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_specs_cover_model_exactly(self, name):
        cfg = get_config(name)
        model = build_model(name)
        spec_names = set(build_shard_specs(cfg))
        model_names = {n for n, _ in model.named_parameters()}
        assert spec_names == model_names

    @pytest.mark.parametrize("name", FAMILIES)
    def test_spec_shapes_match_model(self, name):
        cfg = get_config(name)
        model = build_model(name)
        specs = build_shard_specs(cfg)
        for pname, param in model.named_parameters():
            assert specs[pname].logical_shape == param.shape, pname

    def test_qkv_uses_fused_sections(self):
        specs = build_shard_specs(get_config("llama-mini"))
        spec = specs["blocks.0.attn.qkv.weight"]
        assert isinstance(spec.fragmenter, FusedSectionsFragment)
        # GQA: q section larger than k/v sections
        q, k, v = spec.fragmenter.section_sizes
        assert q == 2 * k and k == v

    def test_moe_uses_expert_fragments(self):
        specs = build_shard_specs(get_config("moe-mini"))
        up = specs["blocks.0.ffn.up_weight"]
        down = specs["blocks.0.ffn.down_weight"]
        assert isinstance(up.fragmenter, ExpertFragment) and up.fragmenter.shard_dim == 1
        assert isinstance(down.fragmenter, ExpertFragment) and down.fragmenter.shard_dim == 2

    def test_embedding_is_vocab_padded(self):
        cfg = get_config("gpt3-mini")
        spec = build_shard_specs(cfg)["embedding.weight"]
        assert isinstance(spec.fragmenter, VocabFragment)
        assert spec.has_padding
        assert spec.unpadded_shape[0] == cfg.vocab_size

    def test_norms_are_replicated(self):
        specs = build_shard_specs(get_config("gpt3-mini"))
        assert specs["blocks.0.norm1.weight"].pattern == PATTERN_REPLICATED
        assert specs["final_norm.bias"].pattern == PATTERN_REPLICATED

    def test_spec_serialization_round_trip(self):
        specs = build_shard_specs(get_config("moe-mini"))
        for spec in specs.values():
            assert ShardSpec.from_dict(spec.to_dict()) == spec

    def test_fragment_without_fragmenter_raises(self):
        with pytest.raises(ValueError, match="requires a fragmenter"):
            ShardSpec(PATTERN_FRAGMENT, (4, 4), (4, 4), None)


class TestStagePlan:
    def _plan(self, name, stages):
        cfg = get_config(name)
        names = list(build_shard_specs(cfg))
        return cfg, build_stage_plan(cfg, names, stages)

    def test_blocks_partition_contiguously(self):
        _, plan = self._plan("gpt3-mini", 2)  # 4 layers -> (0,2),(2,4)
        assert plan.stage_blocks == ((0, 2), (2, 4))
        assert plan.stages_of("blocks.1.attn.qkv.weight") == (0,)
        assert plan.stages_of("blocks.2.attn.qkv.weight") == (1,)

    def test_uneven_split(self):
        cfg = get_config("bloom-mini")  # 8 layers
        names = list(build_shard_specs(cfg))
        plan = build_stage_plan(cfg, names, 3)
        sizes = [end - start for start, end in plan.stage_blocks]
        assert sizes == [3, 3, 2]

    def test_embedding_on_first_stage(self):
        _, plan = self._plan("gpt3-mini", 2)
        assert 0 in plan.stages_of("embedding.weight")

    def test_tied_embedding_replicated_on_last_stage(self):
        """The paper's replicated-across-PP case."""
        _, plan = self._plan("gpt3-mini", 2)  # tied head
        assert plan.stages_of("embedding.weight") == (0, 1)
        assert plan.is_replicated_across_pp("embedding.weight")

    def test_untied_head_on_last_stage_only(self):
        _, plan = self._plan("llama-mini", 2)
        assert plan.stages_of("embedding.weight") == (0,)
        assert plan.stages_of("lm_head") == (1,)

    def test_final_norm_on_last_stage(self):
        _, plan = self._plan("gpt3-mini", 4)
        assert plan.stages_of("final_norm.weight") == (3,)

    def test_single_stage_owns_everything(self):
        cfg, plan = self._plan("gpt3-mini", 1)
        names = set(build_shard_specs(cfg))
        assert set(plan.params_of_stage(0)) == names

    def test_more_stages_than_layers_raises(self):
        cfg = get_config("gpt3-mini")
        names = list(build_shard_specs(cfg))
        with pytest.raises(ValueError, match="cannot place"):
            build_stage_plan(cfg, names, 5)

    def test_unknown_param_raises(self):
        cfg = get_config("gpt3-mini")
        with pytest.raises(KeyError, match="placement rule"):
            build_stage_plan(cfg, ["mystery.weight"], 1)


class TestModelParallelLayout:
    def test_flat_numel_divides_across_dp(self):
        layout = ModelParallelLayout(get_config("gpt3-mini"), ParallelConfig(tp=2, pp=2, dp=4))
        for coord in layout.mp_coords():
            rank_layout = layout.rank_layout(*coord)
            assert rank_layout.flat_numel % 4 == 0
            assert rank_layout.partition_numel % rank_layout.alignment == 0

    def test_entries_are_contiguous(self):
        layout = ModelParallelLayout(get_config("llama-mini"), ParallelConfig(tp=2, pp=2, dp=2))
        for coord in layout.mp_coords():
            offset = 0
            for entry in layout.rank_layout(*coord).entries:
                assert entry.offset == offset
                offset = entry.end

    def test_partition_slices_cover_each_shard(self):
        layout = ModelParallelLayout(get_config("gpt3-mini"), ParallelConfig(dp=4))
        rank_layout = layout.rank_layout(0, 0, 0)
        for entry in rank_layout.entries:
            slices = rank_layout.partition_slices(entry.name)
            covered = sum(s.shard_end - s.shard_start for s in slices)
            assert covered == entry.numel
            assert slices[0].shard_start == 0
            assert slices[-1].shard_end == entry.numel

    def test_slices_in_partition_are_disjoint_and_complete(self):
        layout = ModelParallelLayout(get_config("gpt3-mini"), ParallelConfig(dp=3))
        rank_layout = layout.rank_layout(0, 0, 0)
        total = 0
        for d in range(3):
            for s in rank_layout.slices_in_partition(d):
                total += s.local_end - s.local_start
        assert total == rank_layout.payload_numel

    def test_sp_ranks_have_identical_layouts(self):
        layout = ModelParallelLayout(get_config("gpt3-mini"), ParallelConfig(sp=2, dp=2))
        a = layout.rank_layout(0, 0, 0)
        b = layout.rank_layout(0, 1, 0)
        assert [e.name for e in a.entries] == [e.name for e in b.entries]
        assert a.flat_numel == b.flat_numel

    def test_tp_shards_shrink_fragmented_params(self):
        cfg = get_config("gpt3-mini")
        solo = ModelParallelLayout(cfg, ParallelConfig(tp=1))
        duo = ModelParallelLayout(cfg, ParallelConfig(tp=2))
        name = "blocks.0.attn.qkv.weight"
        full = solo.rank_layout(0, 0, 0).entry(name)
        half = duo.rank_layout(0, 0, 0).entry(name)
        assert half.numel * 2 == full.numel

    def test_owners_of_tied_embedding(self):
        layout = ModelParallelLayout(get_config("gpt3-mini"), ParallelConfig(pp=2))
        owners = layout.owners_of("embedding.weight")
        assert owners == [(0, 0, 0), (1, 0, 0)]

    def test_total_state_is_topology_invariant(self):
        """Summing each parameter's shards over its TP group (counting
        each name once) must always recover the full model size."""
        cfg = get_config("llama-mini")  # untied head: every param unique

        def reconstructed_numel(parallel):
            layout = ModelParallelLayout(cfg, parallel)
            seen = {}
            for coord in layout.mp_coords():
                if coord[1] != 0:  # one SP replica
                    continue
                for entry in layout.rank_layout(*coord).entries:
                    spec = layout.spec(entry.name)
                    if spec.fragmenter is not None:
                        seen[entry.name] = entry.numel * parallel.tp
                    else:
                        seen[entry.name] = entry.numel
            return sum(seen.values())

        base = reconstructed_numel(ParallelConfig())
        assert reconstructed_numel(ParallelConfig(tp=2, pp=2)) == base
        assert reconstructed_numel(ParallelConfig(tp=2, pp=1, dp=2)) == base
        assert reconstructed_numel(ParallelConfig(tp=1, pp=4, dp=1)) == base

    def test_mp_rank_index_matches_topology(self):
        from repro.dist.topology import Topology

        parallel = ParallelConfig(tp=2, pp=2, dp=2)
        layout = ModelParallelLayout(get_config("gpt3-mini"), parallel)
        topo = Topology(parallel)
        for rank in topo.ranks():
            coord = topo.coord(rank)
            assert (
                layout.mp_rank_index(coord.pp, coord.sp, coord.tp)
                == topo.model_parallel_rank(rank)
            )

    def test_bad_coord_raises(self):
        layout = ModelParallelLayout(get_config("gpt3-mini"), ParallelConfig())
        with pytest.raises(IndexError, match="not on grid"):
            layout.rank_layout(1, 0, 0)
