"""End-to-end params_to_average: divergent replicas through real files.

The paper's fourth pattern covers SP/TP variants where some parameters
(typically norms) are updated independently per rank.  We simulate that
by diverging the norm-parameter values across SP ranks *inside the
saved checkpoint files*, then verify:

* the default (replicated) program refuses the checkpoint loudly;
* the ``average_replicas`` program consolidates by elementwise mean;
* the averaged checkpoint resumes within the paper's loss band.
"""

import numpy as np
import pytest

from repro.ckpt import manifest, naming
from repro.core.convert import ucp_convert
from repro.core.atom import AtomStore
from repro.core.errors import PatternMatchError
from repro.core.patterns import program_for_config
from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.storage.store import ObjectStore

from tests.helpers import make_engine

SOURCE = ParallelConfig(tp=1, pp=1, dp=2, sp=2)
NORM_NAME = "final_norm.weight"
PERTURBATION = 1e-3


def _perturb_norm_on_sp_rank(ckpt_dir: str, tag: str, sp_rank: int) -> np.ndarray:
    """Add deterministic noise to one SP rank's copy of the norm param
    in its optimizer-state files; returns the noise applied."""
    store = ObjectStore(ckpt_dir)
    mp_rank = sp_rank  # pp=1, tp=1 -> mp index == sp coordinate
    noise = None
    for dp_rank in range(SOURCE.dp):
        basename = naming.optim_states_name(dp_rank, mp_rank)
        rel = f"{tag}/{basename}"
        payload = store.load(rel)
        meta = payload["partition_meta"]
        segment = next(s for s in meta["segments"] if s["name"] == NORM_NAME)
        part_lo = dp_rank * meta["partition_numel"]
        part_hi = part_lo + meta["partition_numel"]
        lo = max(segment["offset"], part_lo)
        hi = min(segment["offset"] + segment["numel"], part_hi)
        if lo >= hi:
            store.save(rel, payload)
            manifest.refresh_entry(store, tag, basename)
            continue
        flat = payload["fp32_flat_partition"]
        gen = np.random.default_rng(sp_rank + 1)
        full_noise = (gen.standard_normal(segment["numel"]) * PERTURBATION).astype(
            np.float32
        )
        if noise is None:
            noise = full_noise
        flat[lo - part_lo : hi - part_lo] += full_noise[
            lo - segment["offset"] : hi - segment["offset"]
        ]
        store.save(rel, payload)
        # out-of-band edit: re-commit the manifest entry so integrity
        # checks reflect the perturbed content
        manifest.refresh_entry(store, tag, basename)
    return noise


@pytest.fixture
def diverged_checkpoint(tmp_path):
    engine = make_engine(parallel=SOURCE, seed=7)
    engine.train(3)
    ckpt = str(tmp_path / "ckpt")
    info = engine.save_checkpoint(ckpt)
    base_value = engine.zero.consolidated_tensors("fp32")[NORM_NAME].copy()
    noise = {
        sp: _perturb_norm_on_sp_rank(ckpt, info.tag, sp)
        for sp in range(SOURCE.sp)
    }
    return engine, ckpt, tmp_path, base_value, noise


class TestDivergedReplicas:
    def test_replicated_program_refuses(self, diverged_checkpoint):
        _, ckpt, tmp, _, _ = diverged_checkpoint
        with pytest.raises(PatternMatchError, match="params_to_average"):
            ucp_convert(ckpt, str(tmp / "ucp-strict"))

    def test_average_program_consolidates_by_mean(self, diverged_checkpoint):
        engine, ckpt, tmp, base_value, noise = diverged_checkpoint
        program = program_for_config(engine.model_cfg, average_replicas=True)
        ucp_convert(
            ckpt, str(tmp / "ucp-avg"), program=program, strict_spec_check=False
        )
        atom = AtomStore(str(tmp / "ucp-avg")).read_state(NORM_NAME, "fp32")
        expected = base_value + (noise[0] + noise[1]) / 2.0
        assert np.allclose(atom, expected, atol=1e-6)

    def test_averaged_checkpoint_resumes_within_band(self, diverged_checkpoint):
        engine, ckpt, tmp, _, _ = diverged_checkpoint
        continued = [r.loss for r in engine.train(3)]

        program = program_for_config(engine.model_cfg, average_replicas=True)
        ucp_convert(
            ckpt, str(tmp / "ucp-avg"), program=program, strict_spec_check=False
        )
        target = make_engine(parallel=ParallelConfig(dp=2), seed=0)
        target.load_universal(str(tmp / "ucp-avg"))
        resumed = [r.loss for r in target.train(3)]
        deltas = [abs(a - b) for a, b in zip(continued, resumed)]
        # the 1e-3 perturbation moves the curve slightly; the paper's
        # 0.02 band is the acceptance criterion
        assert max(deltas) <= 0.02

    def test_unverified_replicated_conversion_takes_first_copy(
        self, diverged_checkpoint
    ):
        """verify_replicas=False reproduces the old silent behaviour:
        the lowest-coordinate copy wins."""
        engine, ckpt, tmp, base_value, noise = diverged_checkpoint
        ucp_convert(ckpt, str(tmp / "ucp-loose"), verify_replicas=False)
        atom = AtomStore(str(tmp / "ucp-loose")).read_state(NORM_NAME, "fp32")
        assert np.allclose(atom, base_value + noise[0], atol=1e-6)
