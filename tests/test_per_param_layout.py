"""Tests for the Megatron-classic per-parameter checkpoint layout.

A second on-disk source format: unpartitioned, per-tensor optimizer
states (what Megatron-LM writes without ZeRO).  UCP's Extract
dispatches on the schema, so both formats consolidate into identical
atoms — the one-converter-per-format property (paper §3.1).
"""

import numpy as np
import pytest

from repro.ckpt.errors import CheckpointIncompatibleError
from repro.core.atom import AtomStore
from repro.core.convert import ucp_convert
from repro.core.resume import resume_training
from repro.dist.topology import ParallelConfig
from repro.storage.store import ObjectStore

from tests.helpers import make_engine

MEGATRON_STYLE = ParallelConfig(tp=2, pp=2, dp=2, zero_stage=0)


class TestSave:
    def test_one_optim_file_per_mp_rank(self, tmp_path):
        engine = make_engine(parallel=MEGATRON_STYLE)
        engine.train(1)
        info = engine.save_checkpoint(str(tmp_path), optimizer_layout="per_param")
        optim = [f for f in info.files if "optim_states" in f]
        assert len(optim) == 4  # one per mp rank, none per dp rank

    def test_payload_holds_per_tensor_states(self, tmp_path):
        engine = make_engine(parallel=MEGATRON_STYLE)
        engine.train(1)
        info = engine.save_checkpoint(str(tmp_path), optimizer_layout="per_param")
        store = ObjectStore(str(tmp_path))
        rel = next(f for f in info.files if "optim_states" in f)
        payload = store.load(rel)
        assert "param_states" in payload
        assert "fp32_flat_partition" not in payload
        fp32 = payload["param_states"]["fp32"]
        assert any(v.ndim == 2 for v in fp32.values())  # real tensor shapes

    def test_requires_zero_stage_0(self, tmp_path):
        engine = make_engine(parallel=ParallelConfig(dp=2, zero_stage=1))
        engine.train(1)
        with pytest.raises(ValueError, match="zero_stage=0"):
            engine.save_checkpoint(str(tmp_path), optimizer_layout="per_param")

    def test_unknown_layout_rejected(self, tmp_path):
        engine = make_engine()
        with pytest.raises(ValueError, match="optimizer_layout"):
            engine.save_checkpoint(str(tmp_path), optimizer_layout="columnar")


class TestStrictLoad:
    def test_bit_exact_resume(self, tmp_path):
        src = make_engine(parallel=MEGATRON_STYLE, seed=7)
        src.train(3)
        src.save_checkpoint(str(tmp_path), optimizer_layout="per_param")
        continued = [r.loss for r in src.train(2)]

        dst = make_engine(parallel=MEGATRON_STYLE, seed=0)
        dst.load_checkpoint(str(tmp_path))
        resumed = [r.loss for r in dst.train(2)]
        assert continued == resumed

    def test_zero_stage_change_requires_ucp(self, tmp_path):
        src = make_engine(parallel=MEGATRON_STYLE, seed=7)
        src.train(1)
        src.save_checkpoint(str(tmp_path), optimizer_layout="per_param")
        dst = make_engine(parallel=ParallelConfig(tp=2, pp=2, dp=2, zero_stage=1))
        with pytest.raises(CheckpointIncompatibleError, match="ZeRO stage"):
            dst.load_checkpoint(str(tmp_path))

    def test_topology_change_fails(self, tmp_path):
        src = make_engine(parallel=MEGATRON_STYLE, seed=7)
        src.train(1)
        src.save_checkpoint(str(tmp_path), optimizer_layout="per_param")
        dst = make_engine(parallel=ParallelConfig(tp=1, pp=1, dp=1, zero_stage=0))
        with pytest.raises(CheckpointIncompatibleError):
            dst.load_checkpoint(str(tmp_path))


class TestConversionAcrossFormats:
    def test_both_formats_produce_identical_atoms(self, tmp_path):
        """The crux: flat-ZeRO and per-param sources consolidate to the
        same universal representation."""
        engine = make_engine(parallel=MEGATRON_STYLE, seed=7)
        engine.train(2)
        flat_dir = str(tmp_path / "flat")
        pp_dir = str(tmp_path / "per_param")
        engine.save_checkpoint(flat_dir, optimizer_layout="flat")
        engine.save_checkpoint(pp_dir, optimizer_layout="per_param")

        ucp_convert(flat_dir, str(tmp_path / "ucp-flat"))
        ucp_convert(pp_dir, str(tmp_path / "ucp-pp"))

        a = AtomStore(str(tmp_path / "ucp-flat"))
        b = AtomStore(str(tmp_path / "ucp-pp"))
        assert a.list_atoms() == b.list_atoms()
        for name in a.list_atoms():
            for kind in ("fp32", "exp_avg", "exp_avg_sq"):
                assert np.array_equal(
                    a.read_state(name, kind), b.read_state(name, kind)
                ), (name, kind)

    def test_per_param_source_resumes_under_zero2(self, tmp_path):
        """Megatron-classic source -> UCP -> ZeRO-2 data parallelism."""
        src = make_engine(parallel=MEGATRON_STYLE, seed=7)
        src.train(2)
        ckpt = str(tmp_path / "ckpt")
        src.save_checkpoint(ckpt, optimizer_layout="per_param")
        continued = [r.loss for r in src.train(2)]

        dst = resume_training(ckpt, ParallelConfig(dp=4, zero_stage=2))
        resumed = [r.loss for r in dst.train(2)]
        assert np.allclose(continued, resumed, atol=2e-2)
