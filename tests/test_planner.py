"""Tests for the resilience/checkpoint-interval planner."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckpt.planner import (
    FailureCostModel,
    cluster_mtbf_hours,
    plan_resilience,
    wasted_gpu_hours_elastic,
    wasted_gpu_hours_inmemory,
    wasted_gpu_hours_wait_for_repair,
    young_daly_interval_hours,
)


class TestMTBF:
    def test_more_nodes_fail_more_often(self):
        assert cluster_mtbf_hours(10_000, 1000) < cluster_mtbf_hours(10_000, 10)

    def test_single_node(self):
        assert cluster_mtbf_hours(5000, 1) == 5000

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            cluster_mtbf_hours(0, 10)
        with pytest.raises(ValueError):
            cluster_mtbf_hours(100, 0)


class TestYoungDaly:
    def test_formula(self):
        assert young_daly_interval_hours(0.5, 100) == pytest.approx(math.sqrt(100))

    def test_cheaper_checkpoints_mean_shorter_intervals(self):
        assert young_daly_interval_hours(0.01, 100) < young_daly_interval_hours(1.0, 100)

    @given(
        cost=st.floats(1e-3, 1.0),
        mtbf=st.floats(1.0, 1e4),
    )
    @settings(max_examples=50, deadline=None)
    def test_optimum_property(self, cost, mtbf):
        """The Young/Daly point minimizes expected overhead-per-hour:
        checkpointing cost c/T plus expected rework T/(2*MTBF)."""

        def overhead(interval):
            return cost / interval + interval / (2 * mtbf)

        best = young_daly_interval_hours(cost, mtbf)
        assert overhead(best) <= overhead(best * 1.3) + 1e-12
        assert overhead(best) <= overhead(best * 0.7) + 1e-12


class TestWasteModels:
    def _model(self, **overrides):
        defaults = dict(
            num_gpus=1024,
            checkpoint_interval_hours=1.0,
            repair_hours=6.0,
            restart_hours=0.1,
            failed_fraction=8 / 1024,
        )
        defaults.update(overrides)
        return FailureCostModel(**defaults)

    def test_elastic_beats_waiting(self):
        model = self._model()
        assert wasted_gpu_hours_elastic(model) < wasted_gpu_hours_wait_for_repair(model)

    def test_inmemory_cheapest_when_spares_exist(self):
        model = self._model()
        assert wasted_gpu_hours_inmemory(model) < wasted_gpu_hours_elastic(model)

    def test_waiting_waste_scales_with_repair_time(self):
        fast = wasted_gpu_hours_wait_for_repair(self._model(repair_hours=1.0))
        slow = wasted_gpu_hours_wait_for_repair(self._model(repair_hours=24.0))
        assert slow > fast

    def test_elastic_waste_mostly_insensitive_to_repair_time(self):
        """UCP's point: only the failed GPUs idle during repair."""
        fast = wasted_gpu_hours_elastic(self._model(repair_hours=1.0))
        slow = wasted_gpu_hours_elastic(self._model(repair_hours=24.0))
        wait_slow = wasted_gpu_hours_wait_for_repair(self._model(repair_hours=24.0))
        assert (slow - fast) < 0.05 * wait_slow

    def test_bad_model_inputs(self):
        with pytest.raises(ValueError):
            self._model(num_gpus=0)
        with pytest.raises(ValueError):
            self._model(failed_fraction=0.0)
        with pytest.raises(ValueError):
            self._model(repair_hours=-1)


class TestPlanResilience:
    def test_gpt4_scale_story(self):
        """The paper's motivating scale: ~25k GPUs, multi-month runs."""
        plan = plan_resilience(
            num_gpus=24576,
            gpus_per_node=8,
            node_mtbf_hours=50_000,
            checkpoint_cost_hours=0.05,
            repair_hours=6.0,
        )
        # failures are frequent at this scale...
        assert plan.failures_per_30_days > 10
        # ...and elastic continuation eliminates most of the waste
        assert plan.elastic_savings_fraction > 0.5

    def test_interval_is_young_daly(self):
        plan = plan_resilience(1024, 8, 10_000, 0.02, 4.0)
        mtbf = cluster_mtbf_hours(10_000, 128)
        assert plan.interval_hours == pytest.approx(
            young_daly_interval_hours(0.02, mtbf)
        )

    def test_indivisible_nodes_raise(self):
        with pytest.raises(ValueError):
            plan_resilience(10, 8, 1000, 0.1, 1.0)
