"""Tests for the paper-scale projection model."""

from repro.core.projection import project_checkpoint_costs
from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.storage.nvme import NVMeModel


def project(model="gpt3-350m", parallel=None, **kwargs):
    return project_checkpoint_costs(
        get_config(model),
        parallel if parallel is not None else ParallelConfig(tp=2, pp=2, dp=2),
        **kwargs,
    )


class TestFootprints:
    def test_total_state_is_12_bytes_per_param(self):
        proj = project("llama-7b")
        cfg = get_config("llama-7b")
        # ~6.7B params (with padding) x 12 bytes, one SP replica
        assert 70e9 < proj.total_state_bytes < 95e9

    def test_bloom_state_matches_paper_scale(self):
        proj = project("bloom-176b", ParallelConfig(tp=2, pp=24, dp=8))
        assert 1.8 <= proj.total_state_tb <= 2.6

    def test_file_count_matches_topology(self):
        proj = project(parallel=ParallelConfig(tp=2, pp=2, dp=4))
        assert proj.num_optim_files == 4 * 4
        assert proj.world_size == 16

    def test_wider_dp_means_smaller_files(self):
        narrow = project(parallel=ParallelConfig(tp=2, pp=2, dp=2))
        wide = project(parallel=ParallelConfig(tp=2, pp=2, dp=8))
        assert wide.bytes_per_optim_file < narrow.bytes_per_optim_file


class TestTimings:
    def test_bigger_models_save_slower(self):
        assert project("llama-7b").save_seconds > project("gpt3-350m").save_seconds

    def test_faster_device_saves_faster(self):
        slow = project(nvme=NVMeModel(read_gbps=1.0, write_gbps=0.5))
        fast = project(nvme=NVMeModel(read_gbps=10.0, write_gbps=5.0))
        assert fast.save_seconds < slow.save_seconds

    def test_overhead_ratio_is_small_factor(self):
        for model in ["gpt3-350m", "llama-7b", "bloom-176b"]:
            parallel = (
                ParallelConfig(tp=2, pp=24, dp=8)
                if model == "bloom-176b"
                else ParallelConfig(tp=2, pp=2, dp=2)
            )
            proj = project(model, parallel)
            assert 1.0 <= proj.ucp_overhead_ratio <= 6.0, model

    def test_projection_is_cheap(self):
        """Projecting a 176B job must not instantiate weights."""
        import time

        start = time.perf_counter()
        project("bloom-176b", ParallelConfig(tp=2, pp=24, dp=8))
        assert time.perf_counter() - start < 2.0
