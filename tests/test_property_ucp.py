"""Property-based tests over the UCP pipeline (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.convert import ucp_convert
from repro.core.ops import add_padding, strip_padding
from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.parallel.layout import ModelParallelLayout
from repro.parallel.sharding import VocabFragment
from repro.parallel.tp import PATTERN_FRAGMENT, ShardSpec

from tests.helpers import make_engine


def parallel_configs():
    """Strategy over valid mini-model parallel configs (batch size 8)."""

    def build(tp, pp, dp_exp, zero):
        dp = 2 ** dp_exp
        if zero == 3:
            tp = pp = 1
        return ParallelConfig(tp=tp, pp=pp, dp=dp, zero_stage=zero)

    return st.builds(
        build,
        tp=st.sampled_from([1, 2]),
        pp=st.sampled_from([1, 2, 4]),
        dp_exp=st.integers(0, 2),
        zero=st.sampled_from([0, 1, 2, 3]),
    )


class TestPaddingProperties:
    @given(
        logical_rows=st.integers(1, 30),
        pad_to=st.sampled_from([1, 4, 8, 16]),
        cols=st.integers(1, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_strip_add_inverse(self, logical_rows, pad_to, cols):
        padded_rows = ((logical_rows + pad_to - 1) // pad_to) * pad_to
        spec = ShardSpec(
            PATTERN_FRAGMENT,
            (padded_rows, cols),
            (logical_rows, cols),
            VocabFragment(logical_rows=logical_rows),
        )
        gen = np.random.default_rng(logical_rows)
        unpadded = gen.standard_normal((logical_rows, cols)).astype(np.float32)
        assert np.array_equal(
            strip_padding(add_padding(unpadded, spec), spec), unpadded
        )


class TestLayoutProperties:
    @given(parallel=parallel_configs())
    @settings(max_examples=25, deadline=None)
    def test_partitions_tile_payload(self, parallel):
        """Every layout's DP partitions exactly tile the payload, for
        any valid topology."""
        layout = ModelParallelLayout(get_config("gpt3-mini"), parallel)
        for coord in layout.mp_coords():
            rank_layout = layout.rank_layout(*coord)
            covered = 0
            for d in range(parallel.dp):
                for piece in rank_layout.slices_in_partition(d):
                    assert piece.local_start < piece.local_end
                    covered += piece.local_end - piece.local_start
            assert covered == rank_layout.payload_numel

    @given(parallel=parallel_configs())
    @settings(max_examples=25, deadline=None)
    def test_shard_shapes_consistent_with_specs(self, parallel):
        layout = ModelParallelLayout(get_config("llama-mini"), parallel)
        for coord in layout.mp_coords():
            for entry in layout.rank_layout(*coord).entries:
                spec = layout.spec(entry.name)
                assert entry.shard_shape == spec.shard_shape(parallel.tp)


@pytest.mark.slow
class TestConvertLoadProperty:
    @given(source=parallel_configs(), target=parallel_configs())
    @settings(max_examples=8, deadline=None)
    def test_random_reshard_preserves_state(self, tmp_path_factory, source, target):
        """For random (source, target) pairs: save -> convert -> load
        reproduces the source's consolidated state exactly."""
        tmp = tmp_path_factory.mktemp("prop")
        src = make_engine(parallel=source, seed=3, global_batch_size=8)
        src.train(1)
        ckpt, ucp = str(tmp / "c"), str(tmp / "u")
        src.save_checkpoint(ckpt)
        ucp_convert(ckpt, ucp)

        dst = make_engine(parallel=target, seed=0, global_batch_size=8)
        dst.load_universal(ucp)
        for kind in ("fp32", "exp_avg"):
            a = src.zero.consolidated_tensors(kind)
            b = dst.zero.consolidated_tensors(kind)
            for name in a:
                spec = src.layout.spec(name)
                cut = tuple(slice(0, d) for d in spec.unpadded_shape)
                assert np.array_equal(a[name][cut], b[name][cut]), (name, kind)


class TestFragmentAlgebraProperties:
    @given(
        rows_per_rank=st.integers(1, 6),
        cols=st.integers(1, 5),
        tp=st.integers(1, 4),
        num_cuts=st.integers(0, 4),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_dp_cuts_union_exactly(
        self, rows_per_rank, cols, tp, num_cuts, seed
    ):
        """Property: however a ZeRO boundary slices the TP shards into
        contiguous pieces, Union reassembles the consolidated tensor
        exactly."""
        import numpy as np
        from repro.core.ops import ParamFragment, union
        from repro.parallel.sharding import EvenFragment

        gen = np.random.default_rng(seed)
        full = gen.standard_normal((rows_per_rank * tp, cols)).astype(np.float32)
        frag = EvenFragment(dim=0)
        spec = ShardSpec(
            PATTERN_FRAGMENT, tuple(full.shape), tuple(full.shape), frag
        )
        fragments = []
        for tp_rank in range(tp):
            shard = frag.shard(full, tp, tp_rank) if tp > 1 else full
            flat = shard.reshape(-1)
            cut_points = sorted(
                set(gen.integers(1, flat.size, size=num_cuts).tolist())
            ) if flat.size > 1 and num_cuts else []
            bounds = [0] + cut_points + [flat.size]
            for dp_rank, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
                fragments.append(
                    ParamFragment(
                        name="p", kind="fp32", data=flat[lo:hi].copy(),
                        shard_start=lo, shard_end=hi,
                        pp_stage=0, sp_rank=0, tp_rank=tp_rank, dp_rank=dp_rank,
                        shard_shape=tuple(shard.shape),
                    )
                )
        gen.shuffle(fragments)  # order of arrival must not matter
        out = union(fragments, spec, tp_degree=tp)
        assert np.array_equal(out, full)
