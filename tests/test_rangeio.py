"""Byte-range IO layer: windowed reads, coalescing, and the block cache."""

import hashlib

import numpy as np
import pytest

from repro.storage.rangeio import BlockCache, RangeReader
from repro.storage.serializer import SerializationError
from repro.storage.store import ObjectStore


@pytest.fixture
def store(tmp_path):
    store = ObjectStore(str(tmp_path))
    payload = bytes(range(256)) * 400  # 102400 bytes, position-dependent
    (tmp_path / "blob.bin").write_bytes(payload)
    return store, payload


class TestReadRange:
    def test_exact_bytes(self, store):
        store, payload = store
        assert store.read_range("blob.bin", 1000, 37) == payload[1000:1037]

    def test_short_read_raises(self, store):
        store, payload = store
        with pytest.raises(EOFError):
            store.read_range("blob.bin", len(payload) - 10, 20)

    def test_invalid_range_rejected(self, store):
        store, _ = store
        with pytest.raises(ValueError):
            store.read_range("blob.bin", -1, 4)
        with pytest.raises(ValueError):
            store.read_range("blob.bin", 0, -4)

    def test_bytes_accounted(self, store):
        store, _ = store
        before = store.bytes_read
        store.read_range("blob.bin", 0, 512)
        assert store.bytes_read - before == 512


class TestBlockCache:
    def test_lru_bound_respected(self):
        cache = BlockCache(max_bytes=100)
        for i in range(10):
            cache.put("f", i * 20, bytes(20))
        assert cache.current_bytes <= 100
        assert len(cache) == 5
        # oldest spans were evicted, newest retained
        assert cache.get("f", 180, 200) is not None
        assert cache.get("f", 0, 20) is None

    def test_oversized_block_never_cached(self):
        cache = BlockCache(max_bytes=10)
        cache.put("f", 0, bytes(11))
        assert len(cache) == 0 and cache.current_bytes == 0

    def test_spans_stay_sorted_and_disjoint(self):
        cache = BlockCache()
        cache.put("f", 40, bytes(10))
        cache.put("f", 0, bytes(10))
        cache.put("f", 20, bytes(10))
        assert cache.spans("f") == [(0, 10), (20, 30), (40, 50)]


class TestRangeReader:
    def test_read_returns_exact_bytes(self, store):
        store, payload = store
        reader = RangeReader(store)
        assert bytes(reader.read("blob.bin", 500, 300)) == payload[500:800]

    def test_windowed_fetch_bounds_single_reads(self, store):
        store, payload = store
        reader = RangeReader(store, window_bytes=1000)
        data = reader.read("blob.bin", 0, 10240)
        assert bytes(data) == payload[:10240]
        assert reader.peak_window_bytes == 1000
        assert reader.read_ops == 11  # 10 full windows + 240-byte tail

    def test_cache_serves_repeat_reads_without_io(self, store):
        store, payload = store
        reader = RangeReader(store)
        reader.read("blob.bin", 0, 4096)
        ops = reader.read_ops
        again = reader.read("blob.bin", 1024, 1024)
        assert bytes(again) == payload[1024:2048]
        assert reader.read_ops == ops  # fully cache-served
        assert reader.cache_hits >= 1

    def test_adjacent_ranges_coalesce_into_one_read(self, store):
        store, payload = store
        reader = RangeReader(store)
        parts = reader.read_multi("blob.bin", [(0, 100), (100, 100), (200, 100)])
        assert [bytes(p) for p in parts] == [
            payload[0:100], payload[100:200], payload[200:300]
        ]
        assert reader.read_ops == 1

    def test_distant_ranges_fetch_separately(self, store):
        store, _ = store
        reader = RangeReader(store)
        reader.read_multi("blob.bin", [(0, 100), (50_000, 100)])
        assert reader.read_ops == 2
        assert reader.bytes_read == 200

    def test_coalesce_gap_merges_near_ranges(self, store):
        store, payload = store
        reader = RangeReader(store, coalesce_gap=64)
        parts = reader.read_multi("blob.bin", [(0, 100), (150, 100)])
        assert bytes(parts[1]) == payload[150:250]
        assert reader.read_ops == 1  # one read spanning the 50-byte gap
        assert reader.bytes_read == 250

    def test_results_in_input_order(self, store):
        store, payload = store
        reader = RangeReader(store)
        parts = reader.read_multi("blob.bin", [(900, 10), (100, 10), (500, 10)])
        assert [bytes(p) for p in parts] == [
            payload[900:910], payload[100:110], payload[500:510]
        ]

    def test_request_larger_than_cache_still_correct(self, store):
        store, payload = store
        reader = RangeReader(
            store, cache=BlockCache(max_bytes=512), window_bytes=256
        )
        data = reader.read("blob.bin", 0, 8192)
        assert bytes(data) == payload[:8192]

    def test_digest_matches_and_warms_cache(self, store):
        store, payload = store
        reader = RangeReader(store, window_bytes=4096)
        digest = reader.digest("blob.bin")
        assert digest == hashlib.sha256(payload).hexdigest()
        ops = reader.read_ops
        assert bytes(reader.read("blob.bin", 0, len(payload))) == payload
        assert reader.read_ops == ops  # extract rides the digest's blocks

    def test_zero_length_range(self, store):
        store, _ = store
        reader = RangeReader(store)
        assert bytes(reader.read("blob.bin", 10, 0)) == b""
        assert reader.read_ops == 0

    def test_missing_file_raises(self, store):
        store, _ = store
        reader = RangeReader(store)
        with pytest.raises(FileNotFoundError):
            reader.read("nope.bin", 0, 10)


class TestReadOnlyReturns:
    """Cache-poisoning defense: served bytes are immutable.

    Every buffer handed out by the cache/reader layers is read-only —
    a caller mutating its view must get an immediate error, never a
    silent corruption of blocks other readers will treat as
    digest-verified.
    """

    def test_single_block_view_is_readonly(self, store):
        store, _ = store
        reader = RangeReader(store)
        view = reader.read("blob.bin", 100, 50)  # zero-copy cache view
        assert view.readonly
        with pytest.raises(TypeError):
            view[0] = 0xFF

    def test_multi_piece_view_is_readonly(self, store):
        store, _ = store
        reader = RangeReader(store)
        reader.read("blob.bin", 0, 100)
        reader.read("blob.bin", 100, 100)
        view = reader.read("blob.bin", 50, 100)  # spans two cached blocks
        assert view.readonly

    def test_frombuffer_over_view_is_readonly(self, store):
        store, _ = store
        reader = RangeReader(store)
        arr = np.frombuffer(reader.read("blob.bin", 0, 400), dtype=np.float32)
        assert not arr.flags.writeable
        with pytest.raises(ValueError):
            arr[0] = 1.0

    def test_put_normalizes_mutable_buffers(self):
        cache = BlockCache()
        scratch = bytearray(b"abcdefgh")
        cache.put("f", 0, scratch)
        scratch[:] = b"XXXXXXXX"  # caller reuses its scratch buffer
        assert cache.get("f", 0, 8) == b"abcdefgh"

    def test_cache_mutation_attempt_does_not_reach_later_reads(self, store):
        store, payload = store
        reader = RangeReader(store)
        view = reader.read("blob.bin", 0, 64)
        with pytest.raises(TypeError):
            view[:] = b"\x00" * 64
        assert bytes(reader.read("blob.bin", 0, 64)) == payload[:64]


class TestIndexReads:
    def test_load_index_locates_payload_bytes(self, tmp_path):
        store = ObjectStore(str(tmp_path))
        arr = np.arange(1000, dtype=np.float32)
        store.save("obj.npt", {"values": arr, "meta": {"k": 1}})
        tree = store.load_index("obj.npt")
        assert tree["meta"] == {"k": 1}
        entry = tree["values"]
        offset, nbytes = entry.element_range(10, 5)
        raw = store.read_range("obj.npt", offset, nbytes)
        assert np.array_equal(
            np.frombuffer(raw, dtype=np.float32), arr[10:15]
        )

    def test_element_range_rejects_overrun(self, tmp_path):
        store = ObjectStore(str(tmp_path))
        store.save("obj.npt", {"values": np.zeros(8, dtype=np.float32)})
        entry = store.load_index("obj.npt")["values"]
        with pytest.raises(SerializationError):
            entry.element_range(6, 4)
