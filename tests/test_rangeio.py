"""Byte-range IO layer: windowed reads, coalescing, and the block cache."""

import hashlib

import numpy as np
import pytest

from repro.storage.rangeio import BlockCache, RangeReader
from repro.storage.serializer import SerializationError
from repro.storage.store import ObjectStore


@pytest.fixture
def store(tmp_path):
    store = ObjectStore(str(tmp_path))
    payload = bytes(range(256)) * 400  # 102400 bytes, position-dependent
    (tmp_path / "blob.bin").write_bytes(payload)
    return store, payload


class TestReadRange:
    def test_exact_bytes(self, store):
        store, payload = store
        assert store.read_range("blob.bin", 1000, 37) == payload[1000:1037]

    def test_short_read_raises(self, store):
        store, payload = store
        with pytest.raises(EOFError):
            store.read_range("blob.bin", len(payload) - 10, 20)

    def test_invalid_range_rejected(self, store):
        store, _ = store
        with pytest.raises(ValueError):
            store.read_range("blob.bin", -1, 4)
        with pytest.raises(ValueError):
            store.read_range("blob.bin", 0, -4)

    def test_bytes_accounted(self, store):
        store, _ = store
        before = store.bytes_read
        store.read_range("blob.bin", 0, 512)
        assert store.bytes_read - before == 512


class TestBlockCache:
    def test_lru_bound_respected(self):
        cache = BlockCache(max_bytes=100)
        for i in range(10):
            cache.put("f", i * 20, bytes(20))
        assert cache.current_bytes <= 100
        assert len(cache) == 5
        # oldest spans were evicted, newest retained
        assert cache.get("f", 180, 200) is not None
        assert cache.get("f", 0, 20) is None

    def test_oversized_block_never_cached(self):
        cache = BlockCache(max_bytes=10)
        cache.put("f", 0, bytes(11))
        assert len(cache) == 0 and cache.current_bytes == 0

    def test_spans_stay_sorted_and_disjoint(self):
        cache = BlockCache()
        cache.put("f", 40, bytes(10))
        cache.put("f", 0, bytes(10))
        cache.put("f", 20, bytes(10))
        assert cache.spans("f") == [(0, 10), (20, 30), (40, 50)]


class TestRangeReader:
    def test_read_returns_exact_bytes(self, store):
        store, payload = store
        reader = RangeReader(store)
        assert bytes(reader.read("blob.bin", 500, 300)) == payload[500:800]

    def test_windowed_fetch_bounds_single_reads(self, store):
        store, payload = store
        reader = RangeReader(store, window_bytes=1000)
        data = reader.read("blob.bin", 0, 10240)
        assert bytes(data) == payload[:10240]
        assert reader.peak_window_bytes == 1000
        assert reader.read_ops == 11  # 10 full windows + 240-byte tail

    def test_cache_serves_repeat_reads_without_io(self, store):
        store, payload = store
        reader = RangeReader(store)
        reader.read("blob.bin", 0, 4096)
        ops = reader.read_ops
        again = reader.read("blob.bin", 1024, 1024)
        assert bytes(again) == payload[1024:2048]
        assert reader.read_ops == ops  # fully cache-served
        assert reader.cache_hits >= 1

    def test_adjacent_ranges_coalesce_into_one_read(self, store):
        store, payload = store
        reader = RangeReader(store)
        parts = reader.read_multi("blob.bin", [(0, 100), (100, 100), (200, 100)])
        assert [bytes(p) for p in parts] == [
            payload[0:100], payload[100:200], payload[200:300]
        ]
        assert reader.read_ops == 1

    def test_distant_ranges_fetch_separately(self, store):
        store, _ = store
        reader = RangeReader(store)
        reader.read_multi("blob.bin", [(0, 100), (50_000, 100)])
        assert reader.read_ops == 2
        assert reader.bytes_read == 200

    def test_coalesce_gap_merges_near_ranges(self, store):
        store, payload = store
        reader = RangeReader(store, coalesce_gap=64)
        parts = reader.read_multi("blob.bin", [(0, 100), (150, 100)])
        assert bytes(parts[1]) == payload[150:250]
        assert reader.read_ops == 1  # one read spanning the 50-byte gap
        assert reader.bytes_read == 250

    def test_results_in_input_order(self, store):
        store, payload = store
        reader = RangeReader(store)
        parts = reader.read_multi("blob.bin", [(900, 10), (100, 10), (500, 10)])
        assert [bytes(p) for p in parts] == [
            payload[900:910], payload[100:110], payload[500:510]
        ]

    def test_request_larger_than_cache_still_correct(self, store):
        store, payload = store
        reader = RangeReader(
            store, cache=BlockCache(max_bytes=512), window_bytes=256
        )
        data = reader.read("blob.bin", 0, 8192)
        assert bytes(data) == payload[:8192]

    def test_digest_matches_and_warms_cache(self, store):
        store, payload = store
        reader = RangeReader(store, window_bytes=4096)
        digest = reader.digest("blob.bin")
        assert digest == hashlib.sha256(payload).hexdigest()
        ops = reader.read_ops
        assert bytes(reader.read("blob.bin", 0, len(payload))) == payload
        assert reader.read_ops == ops  # extract rides the digest's blocks

    def test_zero_length_range(self, store):
        store, _ = store
        reader = RangeReader(store)
        assert bytes(reader.read("blob.bin", 10, 0)) == b""
        assert reader.read_ops == 0

    def test_missing_file_raises(self, store):
        store, _ = store
        reader = RangeReader(store)
        with pytest.raises(FileNotFoundError):
            reader.read("nope.bin", 0, 10)


class TestCoalescingEdgeCases:
    """Range batching may change IO shape only — never a payload byte.

    Every case checks the returned buffers against a plain slice of the
    original payload (the "uncoalesced" ground truth) and then pins the
    pread/batch/coalesce counters the batching is supposed to improve.
    """

    def test_overlapping_ranges_fetch_union_once(self, store):
        store, payload = store
        reader = RangeReader(store)
        ranges = [(0, 200), (100, 200), (250, 100)]
        parts = reader.read_multi("blob.bin", ranges)
        assert [bytes(p) for p in parts] == [
            payload[o:o + n] for o, n in ranges
        ]
        assert reader.num_preads == 1
        assert reader.bytes_read == 350  # union of the overlaps, not sum
        assert reader.ranges_coalesced == 2

    def test_out_of_order_ranges_sorted_into_one_pread(self, store):
        store, payload = store
        reader = RangeReader(store)
        ranges = [(200, 100), (0, 100), (100, 100)]
        parts = reader.read_multi("blob.bin", ranges)
        # results in request order, fetched in file order
        assert [bytes(p) for p in parts] == [
            payload[o:o + n] for o, n in ranges
        ]
        assert reader.num_preads == 1
        assert reader.num_batches == 1

    def test_adjacent_single_byte_slices_one_pread(self, store):
        store, payload = store
        reader = RangeReader(store)
        ranges = [(i, 1) for i in range(64)]
        parts = reader.read_multi("blob.bin", ranges)
        assert [bytes(p) for p in parts] == [
            payload[i:i + 1] for i in range(64)
        ]
        assert reader.num_preads == 1
        assert reader.ranges_coalesced == 63

    def test_scattered_single_byte_slices_stay_separate(self, store):
        store, payload = store
        reader = RangeReader(store)  # coalesce_gap=0
        ranges = [(i * 1000, 1) for i in range(8)]
        parts = reader.read_multi("blob.bin", ranges)
        assert [bytes(p) for p in parts] == [
            payload[o:o + 1] for o, _ in ranges
        ]
        assert reader.num_preads == 8
        assert reader.bytes_read == 8
        assert reader.ranges_coalesced == 0

    def test_gap_budget_is_a_hard_boundary(self, store):
        store, _ = store
        just_inside = RangeReader(store, coalesce_gap=11)
        just_inside.read_multi("blob.bin", [(0, 10), (21, 10)])
        assert just_inside.num_preads == 1  # 11-byte gap == budget
        just_outside = RangeReader(store, coalesce_gap=10)
        just_outside.read_multi("blob.bin", [(0, 10), (21, 10)])
        assert just_outside.num_preads == 2

    def test_coalesced_span_straddling_window_boundary(self, store):
        store, payload = store
        reader = RangeReader(store, window_bytes=100, coalesce_gap=16)
        # the merged span [0, 120) exceeds one window: the fetch must
        # split into bounded reads yet still return each range intact
        parts = reader.read_multi("blob.bin", [(0, 60), (70, 50)])
        assert bytes(parts[0]) == payload[0:60]
        assert bytes(parts[1]) == payload[70:120]
        assert reader.num_preads == 2
        assert reader.peak_window_bytes <= 100

    def test_range_straddling_cached_block_boundary(self, store):
        store, payload = store
        reader = RangeReader(store, window_bytes=100)
        reader.read("blob.bin", 0, 300)  # cached as three 100-byte blocks
        ops = reader.read_ops
        view = reader.read("blob.bin", 90, 120)  # spans all three blocks
        assert bytes(view) == payload[90:210]
        assert reader.read_ops == ops  # stitched from cache, no new IO

    def test_coalescing_across_cache_eviction(self, store):
        """Eviction between batched reads must never surface stale or
        misassembled bytes — re-fetched spans are byte-identical."""
        store, payload = store
        reader = RangeReader(
            store,
            cache=BlockCache(max_bytes=256),
            window_bytes=128,
            coalesce_gap=64,
        )
        ranges_a = [(0, 100), (150, 100)]
        ranges_b = [(1000, 100), (1150, 100)]
        for _ in range(3):  # alternate so each batch evicts the other's
            parts = reader.read_multi("blob.bin", ranges_a)
            assert [bytes(p) for p in parts] == [
                payload[o:o + n] for o, n in ranges_a
            ]
            parts = reader.read_multi("blob.bin", ranges_b)
            assert [bytes(p) for p in parts] == [
                payload[o:o + n] for o, n in ranges_b
            ]

    def test_random_plans_identical_with_and_without_coalescing(self, store):
        store, payload = store
        rng = np.random.default_rng(7)
        plain = RangeReader(store, coalesce_gap=0)
        batched = RangeReader(store, coalesce_gap=4096)
        for _ in range(20):
            n = int(rng.integers(1, 12))
            offsets = rng.integers(0, len(payload) - 64, size=n)
            ranges = [
                (int(o), int(rng.integers(1, 64))) for o in offsets
            ]
            expected = [payload[o:o + ln] for o, ln in ranges]
            assert [
                bytes(p) for p in plain.read_multi("blob.bin", ranges)
            ] == expected
            assert [
                bytes(p) for p in batched.read_multi("blob.bin", ranges)
            ] == expected
        assert batched.read_ops <= plain.read_ops


class TestReadOnlyReturns:
    """Cache-poisoning defense: served bytes are immutable.

    Every buffer handed out by the cache/reader layers is read-only —
    a caller mutating its view must get an immediate error, never a
    silent corruption of blocks other readers will treat as
    digest-verified.
    """

    def test_single_block_view_is_readonly(self, store):
        store, _ = store
        reader = RangeReader(store)
        view = reader.read("blob.bin", 100, 50)  # zero-copy cache view
        assert view.readonly
        with pytest.raises(TypeError):
            view[0] = 0xFF

    def test_multi_piece_view_is_readonly(self, store):
        store, _ = store
        reader = RangeReader(store)
        reader.read("blob.bin", 0, 100)
        reader.read("blob.bin", 100, 100)
        view = reader.read("blob.bin", 50, 100)  # spans two cached blocks
        assert view.readonly

    def test_frombuffer_over_view_is_readonly(self, store):
        store, _ = store
        reader = RangeReader(store)
        arr = np.frombuffer(reader.read("blob.bin", 0, 400), dtype=np.float32)
        assert not arr.flags.writeable
        with pytest.raises(ValueError):
            arr[0] = 1.0

    def test_put_normalizes_mutable_buffers(self):
        cache = BlockCache()
        scratch = bytearray(b"abcdefgh")
        cache.put("f", 0, scratch)
        scratch[:] = b"XXXXXXXX"  # caller reuses its scratch buffer
        assert cache.get("f", 0, 8) == b"abcdefgh"

    def test_cache_mutation_attempt_does_not_reach_later_reads(self, store):
        store, payload = store
        reader = RangeReader(store)
        view = reader.read("blob.bin", 0, 64)
        with pytest.raises(TypeError):
            view[:] = b"\x00" * 64
        assert bytes(reader.read("blob.bin", 0, 64)) == payload[:64]


class TestIndexReads:
    def test_load_index_locates_payload_bytes(self, tmp_path):
        store = ObjectStore(str(tmp_path))
        arr = np.arange(1000, dtype=np.float32)
        store.save("obj.npt", {"values": arr, "meta": {"k": 1}})
        tree = store.load_index("obj.npt")
        assert tree["meta"] == {"k": 1}
        entry = tree["values"]
        offset, nbytes = entry.element_range(10, 5)
        raw = store.read_range("obj.npt", offset, nbytes)
        assert np.array_equal(
            np.frombuffer(raw, dtype=np.float32), arr[10:15]
        )

    def test_element_range_rejects_overrun(self, tmp_path):
        store = ObjectStore(str(tmp_path))
        store.save("obj.npt", {"values": np.zeros(8, dtype=np.float32)})
        entry = store.load_index("obj.npt")["values"]
        with pytest.raises(SerializationError):
            entry.element_range(6, 4)
