"""Threaded stress: concurrent conversions and streaming verifiers
sharing one ``BlockCache`` under a strict lock witness.

The multi-tenant hub shape from the paper's serving story: several
``ucp_convert`` pipelines and digest verifiers hammer one shared cache
from many threads at once.  Under ``lockcheck(strict=True)`` any
lock-order cycle, unguarded cache mutation, or over-budget IO under a
non-IO lock (UCP029-UCP031) raises — and the conversion output must
still be byte-identical to a single-threaded reference run.
"""

import dataclasses
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analysis.lockwitness import check_lock_trace, lockcheck
from repro.ckpt import manifest as manifest_mod
from repro.ckpt.loader import latest_committed_tag
from repro.ckpt.saver import save_distributed_checkpoint
from repro.core.convert import ucp_convert
from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.parallel.engine import TrainingEngine
from repro.storage.rangeio import BlockCache, RangeReader
from repro.storage.store import ObjectStore

PARALLEL = ParallelConfig(tp=2, dp=2, zero_stage=1)


def dir_digests(root):
    store = ObjectStore(str(root))
    return {rel: store.digest(rel) for rel in store.list(".")}


@pytest.fixture(scope="module")
def stress_setup(tmp_path_factory):
    """A committed source checkpoint and its reference conversion."""
    root = tmp_path_factory.mktemp("rangeio_stress")
    ckpt = root / "ckpt"
    cfg = dataclasses.replace(get_config("gpt3-mini"), num_layers=1)
    engine = TrainingEngine(
        cfg, PARALLEL, seed=11, global_batch_size=4, seq_len=16
    )
    engine.train(2)
    save_distributed_checkpoint(engine, str(ckpt))

    ref = root / "ref_ucp"
    ucp_convert(str(ckpt), str(ref), workers=1)
    return ckpt, dir_digests(ref)


def _verify_all(ckpt, cache) -> int:
    """Digest-verify every committed file of the tag through a fresh
    reader over the *shared* cache; returns the file count."""
    store = ObjectStore(str(ckpt))
    tag = latest_committed_tag(str(ckpt))
    manifest = manifest_mod.require_manifest(store, tag)
    reader = RangeReader(store, cache=cache, window_bytes=1 << 14)
    rels = sorted(store.list(tag))
    for rel in rels:
        manifest_mod.verify_streaming(
            reader, rel, manifest_mod.manifest_entry(manifest, rel.split("/")[-1])
        )
    return len(rels)


class TestConcurrentConvertAndVerify:
    def test_shared_cache_stress_is_witness_clean_and_byte_identical(
        self, stress_setup, tmp_path
    ):
        ckpt, ref_digests = stress_setup
        shared = BlockCache(8 << 20)
        outs = [tmp_path / f"ucp{i}" for i in range(2)]
        with lockcheck(strict=True, subject="rangeio stress") as w:
            with ThreadPoolExecutor(max_workers=4) as pool:
                futs = [
                    pool.submit(
                        ucp_convert, str(ckpt), str(out),
                        workers=2, cache=shared,
                    )
                    for out in outs
                ] + [
                    pool.submit(_verify_all, ckpt, shared)
                    for _ in range(2)
                ]
                # .result() re-raises any worker-thread LockWitnessError
                results = [f.result() for f in futs]
        # both conversions are byte-identical to the serial reference
        for out in outs:
            assert dir_digests(out) == ref_digests
        assert results[2] > 0 and results[2] == results[3]
        # the cache was genuinely shared: later tenants hit blocks the
        # earlier ones (or the digest pre-warm) pulled in
        assert shared.hits > 0
        assert len(shared) > 0
        # the recorded schedule replays clean offline too
        payload = w.to_payload()
        assert not payload["truncated"]
        assert check_lock_trace(payload).ok

    def test_eviction_churn_under_contention_stays_correct(
        self, stress_setup, tmp_path
    ):
        """A cache far smaller than the checkpoint forces constant
        eviction while threads race; overlap-tolerant inserts and
        snapshot-based assembly must keep every byte right."""
        ckpt, ref_digests = stress_setup
        tiny = BlockCache(4096)
        out = tmp_path / "ucp_tiny"
        with lockcheck(strict=True, subject="eviction churn"):
            with ThreadPoolExecutor(max_workers=3) as pool:
                conv = pool.submit(
                    ucp_convert, str(ckpt), str(out),
                    workers=2, cache=tiny, window_bytes=1 << 12,
                )
                verifs = [
                    pool.submit(_verify_all, ckpt, tiny) for _ in range(2)
                ]
                conv.result()
                for f in verifs:
                    f.result()
        assert dir_digests(out) == ref_digests
        assert tiny.current_bytes <= 4096

    def test_witnessed_run_matches_unwitnessed_run(
        self, stress_setup, tmp_path
    ):
        """The witness observes, never alters: converting under the
        strict witness produces the same bytes as without it."""
        ckpt, ref_digests = stress_setup
        out = tmp_path / "ucp_w"
        with lockcheck(strict=True):
            ucp_convert(str(ckpt), str(out), workers=2)
        assert dir_digests(out) == ref_digests


class TestScheduleSpaceExploration:
    """The stress tests above sample a handful of OS schedules; the
    explorer walks the *space*.  The distilled convert+verify hub shape
    must hold its invariants on every explored interleaving."""

    def test_convert_verify_scenario_is_schedule_clean(self):
        from repro.analysis import interleave

        # deep caps only when CI exports REPRO_INTERLEAVE (the full
        # space is ~4k schedules); the bounded sweep must stay clean
        # too — a UCP039 warning is the only acceptable diagnostic
        cap = 6000 if interleave.enabled_from_env() else 64
        result = interleave.explore("convert-verify", schedules=cap)
        assert result.report.errors == []
        assert result.counterexamples == []
        assert {d.rule_id for d in result.report.warnings} <= {"UCP039"}
        if interleave.enabled_from_env():
            assert result.exhaustive
        assert result.schedules_run > 10  # branches were really explored
