"""Tests for high-level resume flows and elastic failover planning."""

import numpy as np
import pytest

from repro.core.errors import UCPError
from repro.core.resume import ElasticResumeManager, resume_training
from repro.dist.topology import ParallelConfig
from repro.storage.store import ObjectStore

from tests.helpers import make_engine


@pytest.fixture
def trained_ckpt(tmp_path):
    engine = make_engine(parallel=ParallelConfig(tp=2, pp=2, dp=2), seed=7)
    engine.train(3)
    ckpt = str(tmp_path / "ckpt")
    engine.save_checkpoint(ckpt)
    return engine, ckpt


class TestResumeTraining:
    def test_same_topology_skips_conversion(self, trained_ckpt):
        _, ckpt = trained_ckpt
        engine = resume_training(ckpt, ParallelConfig(tp=2, pp=2, dp=2))
        assert engine.iteration == 3
        # no UCP directory created
        assert not ObjectStore(ckpt).exists("ucp_global_step3/ucp_meta.npt")

    def test_changed_topology_converts_lazily(self, trained_ckpt):
        _, ckpt = trained_ckpt
        engine = resume_training(ckpt, ParallelConfig(dp=2))
        assert engine.iteration == 3
        assert ObjectStore(f"{ckpt}/ucp_global_step3").exists("ucp_meta.npt")

    def test_conversion_cached_across_resumes(self, trained_ckpt):
        _, ckpt = trained_ckpt
        resume_training(ckpt, ParallelConfig(dp=2))
        store = ObjectStore(f"{ckpt}/ucp_global_step3")
        marker_mtime = (store.base / "ucp_meta.npt").stat().st_mtime_ns
        resume_training(ckpt, ParallelConfig(dp=4))  # different target, same UCP
        assert (store.base / "ucp_meta.npt").stat().st_mtime_ns == marker_mtime

    def test_loss_continuity_across_topology_change(self, trained_ckpt):
        src, ckpt = trained_ckpt
        continued = [r.loss for r in src.train(3)]
        resumed_engine = resume_training(ckpt, ParallelConfig(tp=1, pp=2, dp=2))
        resumed = [r.loss for r in resumed_engine.train(3)]
        assert np.allclose(continued, resumed, atol=2e-2)

    def test_engine_overrides_forwarded(self, trained_ckpt):
        from repro.optim.lr_schedule import ConstantLRSchedule
        _, ckpt = trained_ckpt
        engine = resume_training(
            ckpt, ParallelConfig(dp=2), lr_schedule=ConstantLRSchedule(5e-5)
        )
        assert engine.train_step().lr == 5e-5

    def test_training_seeds_restored(self, trained_ckpt):
        src, ckpt = trained_ckpt
        engine = resume_training(ckpt, ParallelConfig(dp=2))
        assert engine.data_seed == src.data_seed
        assert engine.global_batch_size == src.global_batch_size


class TestResizePlanning:
    def _manager(self, tmp_path):
        return ElasticResumeManager(str(tmp_path), global_batch_size=8)

    def test_keeps_mp_shape_when_possible(self, tmp_path):
        manager = self._manager(tmp_path)
        source = ParallelConfig(tp=2, pp=2, dp=2)  # world 8
        plan = manager.plan_resize(source, new_world=4)
        assert plan.target.tp == 2 and plan.target.pp == 2
        assert plan.target.dp == 1

    def test_shrinks_pp_when_world_too_small(self, tmp_path):
        manager = self._manager(tmp_path)
        source = ParallelConfig(tp=2, pp=2, dp=2)
        plan = manager.plan_resize(source, new_world=2)
        assert plan.target.world_size <= 2

    def test_grows_dp_with_more_capacity(self, tmp_path):
        manager = self._manager(tmp_path)
        source = ParallelConfig(tp=2, pp=2, dp=1)  # world 4
        plan = manager.plan_resize(source, new_world=16)
        assert plan.target.dp == 4
        assert plan.target.world_size == 16

    def test_dp_constrained_by_batch_divisibility(self, tmp_path):
        manager = ElasticResumeManager(str(tmp_path), global_batch_size=6)
        source = ParallelConfig(tp=1, pp=1, dp=4)
        plan = manager.plan_resize(source, new_world=4)
        assert 6 % plan.target.dp == 0

    def test_zero_world_raises(self, tmp_path):
        with pytest.raises(UCPError, match="zero healthy"):
            self._manager(tmp_path).plan_resize(ParallelConfig(), 0)

    def test_preserves_zero_stage(self, tmp_path):
        manager = self._manager(tmp_path)
        source = ParallelConfig(dp=4, zero_stage=2)
        plan = manager.plan_resize(source, new_world=2)
        assert plan.target.zero_stage == 2


class TestFailoverEndToEnd:
    def test_resume_after_failure_continues_training(self, trained_ckpt):
        """The paper's headline scenario: lose half the cluster, keep
        training on the survivors with consistent loss."""
        src, ckpt = trained_ckpt
        continued = [r.loss for r in src.train(2)]

        manager = ElasticResumeManager(ckpt, global_batch_size=4)
        engine = manager.resume_after_failure(
            source=ParallelConfig(tp=2, pp=2, dp=2), healthy_ranks=4
        )
        assert engine.parallel_cfg.world_size <= 4
        resumed = [r.loss for r in engine.train(2)]
        assert np.allclose(continued, resumed, atol=2e-2)

    def test_resume_with_extra_capacity(self, trained_ckpt):
        src, ckpt = trained_ckpt
        manager = ElasticResumeManager(ckpt, global_batch_size=4)
        engine = manager.resume_with_capacity(
            source=ParallelConfig(tp=2, pp=2, dp=2), new_world=16
        )
        assert engine.parallel_cfg.world_size == 16
        assert engine.iteration == 3
        engine.train(1)


class TestThroughputObjective:
    def _manager(self, tmp_path, micro_batches=2):
        return ElasticResumeManager(
            str(tmp_path), global_batch_size=8, micro_batches=micro_batches
        )

    def test_throughput_prefers_shallow_pipelines(self, tmp_path):
        """With few micro-batches, a deep pipeline's bubble makes it
        slower than a shallower one using the same ranks."""
        manager = self._manager(tmp_path, micro_batches=2)
        source = ParallelConfig(tp=1, pp=4, dp=1)
        plan = manager.plan_resize(source, new_world=4, objective="throughput")
        assert plan.target.pp < 4

    def test_ranks_objective_keeps_source_shape(self, tmp_path):
        manager = self._manager(tmp_path, micro_batches=2)
        source = ParallelConfig(tp=1, pp=4, dp=1)
        plan = manager.plan_resize(source, new_world=4, objective="ranks")
        assert plan.target == source

    def test_many_micro_batches_tolerate_deep_pipelines(self, tmp_path):
        manager = self._manager(tmp_path, micro_batches=64)
        source = ParallelConfig(tp=1, pp=4, dp=1)
        deep = manager.estimated_throughput(ParallelConfig(tp=1, pp=4, dp=1))
        shallow = manager.estimated_throughput(ParallelConfig(tp=1, pp=1, dp=4))
        # at m=64 the pp=4 bubble is ~4.5%: almost as good as pure DP
        assert deep > 0.9 * shallow

    def test_unknown_objective_raises(self, tmp_path):
        manager = self._manager(tmp_path)
        with pytest.raises(ValueError, match="objective"):
            manager.plan_resize(ParallelConfig(), 1, objective="vibes")

    def test_bad_micro_batches_raise(self, tmp_path):
        with pytest.raises(ValueError, match="micro_batches"):
            ElasticResumeManager(str(tmp_path), 8, micro_batches=0)
