"""Tests for checkpoint retention policies."""

import pytest

from repro.ckpt.errors import CheckpointNotFoundError
from repro.ckpt.retention import RetentionPolicy, list_tags, prune_checkpoints
from repro.core.resume import resume_training
from repro.dist.topology import ParallelConfig
from repro.storage.store import ObjectStore

from tests.helpers import make_engine


@pytest.fixture
def many_checkpoints(tmp_path):
    """A run that checkpointed at steps 1..6."""
    engine = make_engine(seed=7)
    ckpt = str(tmp_path / "ckpt")
    for _ in range(6):
        engine.train(1)
        engine.save_checkpoint(ckpt)
    return engine, ckpt


class TestListTags:
    def test_sorted_by_step(self, many_checkpoints):
        _, ckpt = many_checkpoints
        assert list_tags(ckpt) == [f"global_step{i}" for i in range(1, 7)]

    def test_ignores_foreign_directories(self, many_checkpoints):
        _, ckpt = many_checkpoints
        (ObjectStore(ckpt).base / "notes").mkdir()
        assert len(list_tags(ckpt)) == 6


class TestPrune:
    def test_keep_last_window(self, many_checkpoints):
        _, ckpt = many_checkpoints
        pruned = prune_checkpoints(ckpt, RetentionPolicy(keep_last=2))
        assert pruned == [f"global_step{i}" for i in range(1, 5)]
        assert list_tags(ckpt) == ["global_step5", "global_step6"]

    def test_anchors_survive(self, many_checkpoints):
        _, ckpt = many_checkpoints
        pruned = prune_checkpoints(
            ckpt, RetentionPolicy(keep_last=1, keep_every=3)
        )
        kept = list_tags(ckpt)
        assert "global_step3" in kept  # anchor
        assert "global_step6" in kept  # anchor + latest
        assert "global_step2" not in kept
        assert "global_step2" in pruned

    def test_latest_always_protected(self, many_checkpoints):
        _, ckpt = many_checkpoints
        # point latest at an old tag, then prune aggressively
        ObjectStore(ckpt).write_text("latest", "global_step2")
        prune_checkpoints(ckpt, RetentionPolicy(keep_last=1))
        assert "global_step2" in list_tags(ckpt)

    def test_remaining_checkpoint_still_loads(self, many_checkpoints):
        engine, ckpt = many_checkpoints
        continued = [r.loss for r in engine.train(2)]
        prune_checkpoints(ckpt, RetentionPolicy(keep_last=1))
        resumed = resume_training(ckpt, ParallelConfig())
        assert resumed.iteration == 6
        assert [r.loss for r in resumed.train(2)] == continued

    def test_cached_ucp_pruned_with_tag(self, many_checkpoints):
        _, ckpt = many_checkpoints
        # create a cached conversion for an old tag
        resume_training(ckpt, ParallelConfig(dp=2), tag="global_step2")
        store = ObjectStore(ckpt)
        assert (store.base / "ucp_global_step2").is_dir()
        prune_checkpoints(ckpt, RetentionPolicy(keep_last=1))
        assert not (store.base / "ucp_global_step2").exists()

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointNotFoundError):
            prune_checkpoints(str(tmp_path))

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="keep_last"):
            RetentionPolicy(keep_last=0)
        with pytest.raises(ValueError, match="keep_every"):
            RetentionPolicy(keep_every=-1)


class TestPruneEdgeCases:
    def test_non_numeric_tag_suffixes_ignored(self, many_checkpoints):
        _, ckpt = many_checkpoints
        base = ObjectStore(ckpt).base
        (base / "global_stepabc").mkdir()
        (base / "global_step2b").mkdir()
        assert list_tags(ckpt) == [f"global_step{i}" for i in range(1, 7)]
        prune_checkpoints(ckpt, RetentionPolicy(keep_last=1))
        # foreign directories are neither counted nor deleted
        assert (base / "global_stepabc").is_dir()
        assert (base / "global_step2b").is_dir()

    def test_keep_every_zero_disables_anchors(self, many_checkpoints):
        _, ckpt = many_checkpoints
        pruned = prune_checkpoints(
            ckpt, RetentionPolicy(keep_last=1, keep_every=0)
        )
        assert pruned == [f"global_step{i}" for i in range(1, 6)]
        assert list_tags(ckpt) == ["global_step6"]

    def test_missing_latest_file_prunes_by_window_only(
        self, many_checkpoints
    ):
        _, ckpt = many_checkpoints
        (ObjectStore(ckpt).base / "latest").unlink()
        prune_checkpoints(ckpt, RetentionPolicy(keep_last=2))
        assert list_tags(ckpt) == ["global_step5", "global_step6"]

    def test_latest_pointing_at_missing_tag_is_harmless(
        self, many_checkpoints
    ):
        _, ckpt = many_checkpoints
        ObjectStore(ckpt).write_text("latest", "global_step999")
        pruned = prune_checkpoints(ckpt, RetentionPolicy(keep_last=1))
        assert "global_step6" not in pruned
        assert list_tags(ckpt) == ["global_step6"]

    def test_protected_latest_tag_loads_after_aggressive_prune(
        self, many_checkpoints
    ):
        """Pruning around the tag `latest` names must leave a loadable,
        integrity-clean checkpoint behind."""
        from repro.core.inspect import verify_directory

        _, ckpt = many_checkpoints
        ObjectStore(ckpt).write_text("latest", "global_step2")
        prune_checkpoints(ckpt, RetentionPolicy(keep_last=1))
        assert sorted(list_tags(ckpt)) == ["global_step2", "global_step6"]
        resumed = resume_training(ckpt, ParallelConfig())
        assert resumed.iteration == 2
        assert verify_directory(ckpt).ok
