"""Memory sanitizer: injected isolation violations are caught and named.

Each test class injects one of the bug classes the sanitizer exists
for — a rank mutating a shared collective result (UCP025), a snapshot
aliasing live engine state (UCP026), a poisoned cache return (UCP027),
a loaded parameter still backed by cache memory (UCP028) — and asserts
the diagnostic fires with the offending rank/key named.  Buggy variants
simulate a *missing copy at the boundary itself*: they produce aliased
results and hand them to the same public ``sanitize_boundary`` /
``guard_snapshot`` hooks the real code paths call.

The injection tests run their own non-strict sanitizer; under
``REPRO_SANITIZE=1`` it nests inside the session-wide strict one (the
innermost activation wins), so the suite stays green either way.
"""

import os

import numpy as np
import pytest

from repro.analysis import sanitizer as sanitizer_module
from repro.analysis.diagnostics import LayoutLintError
from repro.analysis.sanitizer import (
    MemorySanitizer,
    SanitizerError,
    check_engine_isolation,
    current,
    enabled_from_env,
    sanitize,
    zero_state_arrays,
)
from repro.dist import collectives
from repro.dist.process_group import ProcessGroup

from tests.helpers import make_engine


def bad_broadcast(value, group_size, group=None):
    """A broadcast that forgot the per-rank copy (the injected bug)."""
    arr = np.asarray(value)
    results = [arr for _ in range(group_size)]
    collectives.sanitize_boundary("broadcast", [arr], results, group=group)
    return results


class TestCollectiveBoundary:
    def test_clean_collectives_report_nothing(self):
        with sanitize(strict=True) as san:
            pg = ProcessGroup("tp", [0, 1])
            pg.all_reduce([np.ones(8), np.ones(8)])
            pg.all_gather([np.ones(4), np.ones(4)])
            pg.reduce_scatter([np.arange(8.0), np.arange(8.0)])
            pg.broadcast(np.ones(8))
            collectives.all_to_all([np.arange(4.0), np.arange(4.0)])
        assert san.report.ok
        assert san.checks >= 5

    def test_shared_result_buffer_is_ucp025(self):
        with sanitize(strict=False) as san:
            bad_broadcast(np.ones(4), 3, group=("dp", [4, 5, 6]))
        found = san.report.by_rule("UCP025")
        assert found
        # the diagnostic names the group and real global ranks
        assert any("'dp'" in d.message for d in found)
        assert any("4" in d.message and "5" in d.message for d in found)

    def test_output_aliasing_other_ranks_input_is_ucp025(self):
        with sanitize(strict=False) as san:
            a, b = np.ones(4), np.ones(4)
            # rank 1's "result" is rank 0's input, unconverted
            collectives.sanitize_boundary(
                "all_reduce", [a, b], [a + b, a], group=("tp", [0, 1])
            )
        assert any(
            "input buffer" in d.message
            for d in san.report.by_rule("UCP025")
        )

    def test_read_only_fan_out_is_allowed(self):
        with sanitize(strict=True):
            arr = np.ones(4)
            arr.setflags(write=False)
            # frozen single-buffer fan-out is safe by construction
            collectives.sanitize_boundary(
                "broadcast", [arr], [arr, arr, arr], group=("pp", [0, 1, 2])
            )

    def test_in_place_same_rank_result_is_allowed(self):
        with sanitize(strict=True):
            a, b = np.ones(4), np.ones(4)
            # each rank's output aliasing its own input is NCCL in-place
            collectives.sanitize_boundary(
                "all_reduce", [a, b], [a, b], group=("tp", [0, 1])
            )

    def test_strict_mode_raises_typed_error(self):
        with pytest.raises(SanitizerError) as err:
            with sanitize(strict=True):
                bad_broadcast(np.ones(4), 2)
        assert isinstance(err.value, LayoutLintError)
        assert err.value.report.by_rule("UCP025")

    def test_no_active_sanitizer_is_a_no_op(self, monkeypatch):
        # the REPRO_SANITIZE=1 session fixture may have one installed
        monkeypatch.setattr(sanitizer_module, "_STACK", [])
        assert current() is None
        outs = bad_broadcast(np.ones(4), 2)  # silent without a sanitizer
        assert len(outs) == 2


class TestSnapshotBoundary:
    def _engine(self):
        return make_engine(seed=11)

    def test_clean_snapshot_and_persist(self, tmp_path):
        from repro.ckpt.snapshot import SnapshotManager

        eng = self._engine()
        eng.train(1)
        with sanitize(strict=True) as san:
            mgr = SnapshotManager(eng)
            snap = mgr.snapshot()
            eng.train(1)
            mgr.persist(snap, str(tmp_path / "ckpt"))
        assert san.report.ok

    def test_snapshot_arrays_are_write_protected(self):
        from repro.ckpt.snapshot import SnapshotManager

        eng = self._engine()
        with sanitize(strict=True):
            snap = SnapshotManager(eng).snapshot()
        for _, arr in zero_state_arrays(snap.zero):
            assert not arr.flags.writeable

    def test_aliasing_clone_is_ucp026_at_capture(self, monkeypatch):
        from repro.ckpt.snapshot import SnapshotManager
        from repro.parallel.zero import ZeroPartition

        orig_clone = ZeroPartition.clone

        def bad_clone(self):
            out = orig_clone(self)
            out.fp32 = self.fp32  # the missing .copy()
            return out

        monkeypatch.setattr(ZeroPartition, "clone", bad_clone)
        eng = self._engine()
        with sanitize(strict=False) as san:
            SnapshotManager(eng).snapshot()
        found = san.report.by_rule("UCP026")
        assert found
        # names the offending per-rank state key on both sides
        assert any(
            "fp32" in d.message and "aliases live engine state" in d.message
            for d in found
        )
        assert any("pp0" in d.location for d in found)

    def test_engine_adopting_snapshot_buffer_is_ucp026_at_persist(
        self, tmp_path
    ):
        from repro.ckpt.snapshot import SnapshotManager

        eng = self._engine()
        with sanitize(strict=False) as san:
            mgr = SnapshotManager(eng)
            snap = mgr.snapshot()
            # a "restore" that forgot to copy: the live engine now shares
            # the snapshot's buffer, so training would leak into the files
            coord = next(iter(eng.zero.partitions))
            eng.zero.partitions[coord][0].fp32 = (
                snap.zero.partitions[coord][0].fp32
            )
            mgr.persist(snap, str(tmp_path / "ckpt"))
        assert any(
            "at persist time" in d.message
            for d in san.report.by_rule("UCP026")
        )

    def test_unprotecting_snapshot_is_ucp026_at_persist(self, tmp_path):
        from repro.ckpt.snapshot import SnapshotManager

        eng = self._engine()
        with sanitize(strict=False) as san:
            mgr = SnapshotManager(eng)
            snap = mgr.snapshot()
            coord = next(iter(snap.zero.partitions))
            snap.zero.partitions[coord][0].fp32.setflags(write=True)
            mgr.persist(snap, str(tmp_path / "ckpt"))
        assert any(
            "write protection" in d.message
            for d in san.report.by_rule("UCP026")
        )

    def test_inmemory_commit_clean_and_replicas_frozen(self):
        from repro.ckpt.inmemory import InMemoryCheckpoint

        eng = self._engine()
        eng.train(1)
        with sanitize(strict=True) as san:
            imc = InMemoryCheckpoint(eng, replication_factor=1)
            imc.commit()
        assert san.report.ok
        for replicas in imc._replicas.values():
            for r in replicas:
                assert not r.fp32.flags.writeable

    def test_inmemory_replica_aliasing_owner_is_ucp026(self):
        from repro.ckpt.inmemory import InMemoryCheckpoint

        eng = self._engine()
        with sanitize(strict=False) as san:
            imc = InMemoryCheckpoint(eng, replication_factor=1)
            imc.commit()
            # inject the missing .copy(): one replica now IS the live state
            key = next(iter(imc._replicas))
            (coord, dp_rank) = key
            imc._replicas[key][0].fp32 = (
                eng.zero.partitions[coord][dp_rank].fp32
            )
            imc._sanitize_commit(imc._replicas)
        found = san.report.by_rule("UCP026")
        assert found
        assert any("host" in d.location for d in found)


@pytest.fixture
def atom_cache(tmp_path):
    """A real AtomShardCache over a converted UCP checkpoint."""
    from repro.core.atom import AtomStore
    from repro.core.convert import ucp_convert
    from repro.core.ops import AtomShardCache, gen_ucp_metadata

    eng = make_engine(seed=5)
    eng.train(1)
    ckpt, ucp = str(tmp_path / "ckpt"), str(tmp_path / "ucp")
    eng.save_checkpoint(ckpt)
    ucp_convert(ckpt, ucp)
    plan = gen_ucp_metadata(eng.model_cfg, eng.parallel_cfg)
    cache = AtomShardCache(AtomStore(ucp), plan)
    name = sorted(eng.layout.shard_specs)[0]
    return cache, name, eng


class TestCacheBoundary:
    def test_cached_atoms_are_read_only(self, atom_cache):
        cache, name, _ = atom_cache
        with sanitize(strict=True):
            flat = cache.shard_flat(name, "fp32", 0)
        assert not flat.flags.writeable
        with pytest.raises(ValueError):
            flat[0] = 99.0

    def test_cached_atoms_read_only_even_without_sanitizer(
        self, atom_cache, monkeypatch
    ):
        cache, name, _ = atom_cache
        monkeypatch.setattr(sanitizer_module, "_STACK", [])
        assert current() is None
        flat = cache.shard_flat(name, "fp32", 0)
        with pytest.raises(ValueError):
            flat[0] = 99.0

    def test_poisoned_cache_is_ucp027(self, atom_cache):
        cache, name, _ = atom_cache
        with sanitize(strict=False) as san:
            cache.shard_flat(name, "fp32", 0)
            poisoned = cache._padded[(name, "fp32")]
            poisoned.setflags(write=True)  # force past the protection
            poisoned.reshape(-1)[0] = -1.0
            san.check_cache_integrity(context="test")
        found = san.report.by_rule("UCP027")
        assert found
        assert any(name in d.message for d in found)

    def test_exit_scan_catches_late_poisoning(self, atom_cache):
        cache, name, _ = atom_cache
        with sanitize(strict=False) as san:
            cache.shard_flat(name, "fp32", 0)
            cache._padded[(name, "fp32")].setflags(write=True)
        # the context-manager exit ran the final integrity scan
        assert san.report.by_rule("UCP027")

    def test_claim_returns_private_writable_copy(self, atom_cache):
        cache, name, _ = atom_cache
        with sanitize(strict=True) as san:
            flat = cache.shard_flat(name, "fp32", 0)
            before = flat[0]
            mine = san.claim(flat)
            mine[0] = before + 123.0  # private copy: no violation
            assert flat[0] == before  # source untouched
            san.check_cache_integrity(context="after claim")
        assert san.report.ok

    def test_thaw_exempts_buffer_from_integrity_scan(self, atom_cache):
        cache, name, _ = atom_cache
        with sanitize(strict=True) as san:
            cache.shard_flat(name, "fp32", 0)
            owned = cache._padded[(name, "fp32")]
            san.thaw(owned)
            owned.reshape(-1)[0] = 7.0  # deliberate, claimed mutation
            san.check_cache_integrity(context="after thaw")
        assert san.report.ok


class TestEngineSweep:
    def test_loaded_param_aliasing_cache_is_ucp028(self):
        eng = make_engine(seed=3)
        with sanitize(strict=False) as san:
            coord = next(iter(eng.zero.partitions))
            part = eng.zero.partitions[coord][0]
            fake_block = np.array(part.fp32)
            san.register_cache("atom:word_embeddings:fp32", fake_block)
            part.fp32 = fake_block  # load that kept the zero-copy view
            san.check_engine(eng, context="after load")
        found = san.report.by_rule("UCP028")
        assert found
        # names both the rank state key and the cached atom
        assert any(
            "word_embeddings" in d.message and "pp0" in d.location
            for d in found
        )

    def test_cross_rank_shared_partition_is_ucp025(self):
        eng = make_engine(seed=3)
        parts = eng.zero.partitions
        coord = next(iter(parts))
        if len(parts[coord]) < 2:
            from repro.dist.topology import ParallelConfig

            eng = make_engine(
                parallel=ParallelConfig(tp=1, pp=1, dp=2, sp=1), seed=3
            )
            parts = eng.zero.partitions
            coord = next(iter(parts))
        with sanitize(strict=False) as san:
            parts[coord][1].fp32 = parts[coord][0].fp32  # shared buffer
            san.check_engine(eng, context="after tamper")
        found = san.report.by_rule("UCP025")
        assert found
        assert any("dp0" in d.message and "dp1" in d.message for d in found)

    def test_check_engine_isolation_standalone(self):
        eng = make_engine(seed=3)
        report = check_engine_isolation(eng)
        assert report.ok


class TestModelParameterSweep:
    """The isolation sweep covers model-*parameter* buffers too, with
    each finding labelled by the mp coordinates whose per-rank shard
    enumeration owns the parameter."""

    def test_param_labels_carry_shard_owner_coords(self):
        eng = make_engine(seed=3)
        labels = [k for k, _ in sanitizer_module.model_param_arrays(eng)]
        assert len(labels) == len(list(eng.model.named_parameters()))
        assert all(label.startswith("model/") for label in labels)
        # at least the embedding is covered by rank layouts, so its
        # label names concrete pp/sp/tp owner coordinates
        assert any("pp0" in label and "tp0" in label for label in labels)

    def test_param_grafted_onto_rank_partition_is_ucp025(self):
        """The injected bug: a load that left a model parameter as a
        writable view of one rank's optimizer master partition."""
        eng = make_engine(seed=3)
        coord = next(iter(eng.zero.partitions))
        part = eng.zero.partitions[coord][0]
        name = param = None
        for name, param in eng.model.named_parameters():
            if param.data.size <= part.fp32.size:
                break
        assert param is not None and param.data.size <= part.fp32.size
        param.data = part.fp32[: param.data.size].reshape(param.data.shape)
        with sanitize(strict=False) as san:
            san.check_engine(eng, context="after graft")
        found = san.report.by_rule("UCP025")
        assert any(
            "model parameter" in d.message
            and "rank state" in d.message
            and name in d.location
            for d in found
        ), san.report.render_text()

    def test_param_kept_as_cache_view_is_ucp028(self):
        eng = make_engine(seed=3)
        name, param = next(iter(eng.model.named_parameters()))
        with sanitize(strict=False) as san:
            fake_block = np.array(param.data)
            san.register_cache("block:rank0:model", fake_block)
            param.data = fake_block  # zero-copy load kept the cache view
            san.check_engine(eng, context="after load")
        found = san.report.by_rule("UCP028")
        assert any(
            "model parameter" in d.message and name in d.location
            for d in found
        ), san.report.render_text()

    def test_clean_engine_params_stay_quiet_after_training(self):
        eng = make_engine(seed=3)
        eng.train(1)
        assert check_engine_isolation(eng).ok


class TestActivation:
    def test_current_is_none_by_default(self, monkeypatch):
        monkeypatch.setattr(sanitizer_module, "_STACK", [])
        assert current() is None

    def test_nesting_innermost_wins(self):
        with sanitize(strict=True) as outer:
            with sanitize(strict=False) as inner:
                bad_broadcast(np.ones(4), 2)
            assert inner.report.by_rule("UCP025")
        assert outer.report.ok  # the outer sanitizer never saw it

    def test_enabled_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not enabled_from_env()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not enabled_from_env()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert enabled_from_env()

    def test_violation_renders_through_standard_report(self):
        san = MemorySanitizer(strict=False)
        shared = np.ones(2)
        san.on_collective("broadcast", "tp", [0, 1], [], [shared, shared])
        text = san.report.render_text()
        assert "UCP025" in text and "cross-rank-writable-aliasing" in text


class TestEngineDPGradientSync:
    """The engine's DP gradient-sync path crosses ``sanitize_boundary``.

    ZeRO's per-dp-rank partition arrays are the per-rank results of the
    modeled gradient all-reduce / parameter all-gather; two dp ranks
    sharing one writable buffer is the missing-copy bug UCP025 exists
    for — and must now be caught *inside* ``train_step``.
    """

    def _dp_engine(self):
        from repro.dist.topology import ParallelConfig

        return make_engine(
            parallel=ParallelConfig(tp=1, pp=1, dp=2, zero_stage=1)
        )

    def test_clean_dp_step_passes_strict(self):
        engine = self._dp_engine()
        with sanitize(strict=True) as san:
            engine.train_step()
        # both collectives were checked for every model-parallel rank
        assert san.checks >= 2

    def test_aliased_optimizer_partitions_are_ucp025(self):
        engine = self._dp_engine()
        coord = next(iter(engine.zero.partitions))
        parts = engine.zero.partitions[coord]
        # dp rank 1 "receives" dp rank 0's buffer: the missing copy
        parts[1].state.exp_avg = parts[0].state.exp_avg
        with sanitize(strict=False) as san:
            engine.train_step()
        found = san.report.by_rule("UCP025")
        assert found
        assert any("all_reduce" in d.message for d in found)

    def test_aliased_fp32_partitions_fail_strict_at_all_gather(self):
        engine = self._dp_engine()
        coord = next(iter(engine.zero.partitions))
        parts = engine.zero.partitions[coord]
        parts[1].fp32 = parts[0].fp32
        with pytest.raises(SanitizerError) as err:
            with sanitize(strict=True):
                engine.train_step()
        diags = err.value.report.by_rule("UCP025")
        assert diags
        assert any("all_gather" in d.message for d in diags)

    def test_no_active_sanitizer_keeps_step_running(self, monkeypatch):
        monkeypatch.setattr(sanitizer_module, "_STACK", [])
        engine = self._dp_engine()
        coord = next(iter(engine.zero.partitions))
        parts = engine.zero.partitions[coord]
        parts[1].state.exp_avg = parts[0].state.exp_avg
        engine.train_step()  # hook is a no-op without a sanitizer
