"""Tests for the pipeline schedule simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.schedule import (
    analytic_bubble_fraction,
    simulate_1f1b,
    simulate_gpipe,
)


def _check_dependencies(report):
    """Forward of (s, m) after forward of (s-1, m); backward of (s, m)
    after backward of (s+1, m) and its own forward."""
    f_tick, b_tick = {}, {}
    for stage, slots in report.timelines.items():
        for slot in slots:
            if slot.kind == "F":
                f_tick[(stage, slot.micro_batch)] = slot.tick
            elif slot.kind == "B":
                b_tick[(stage, slot.micro_batch)] = slot.tick
    p = report.num_stages
    for (stage, micro), tick in f_tick.items():
        if stage > 0:
            assert tick > f_tick[(stage - 1, micro)]
    for (stage, micro), tick in b_tick.items():
        assert tick > f_tick[(stage, micro)]
        if stage < p - 1:
            assert tick > b_tick[(stage + 1, micro)]


def _check_no_double_booking(report):
    for stage, slots in report.timelines.items():
        ticks = [s.tick for s in slots if s.kind != "idle"]
        assert len(ticks) == len(set(ticks)), f"stage {stage} double-booked"


class TestGPipe:
    def test_op_counts(self):
        report = simulate_gpipe(4, 8)
        for stage in range(4):
            slots = report.timelines[stage]
            assert sum(1 for s in slots if s.kind == "F") == 8
            assert sum(1 for s in slots if s.kind == "B") == 8

    def test_dependencies_respected(self):
        _check_dependencies(simulate_gpipe(4, 6))

    def test_no_double_booking(self):
        _check_no_double_booking(simulate_gpipe(3, 5))

    def test_single_stage_has_no_bubble(self):
        report = simulate_gpipe(1, 4)
        assert report.bubble_fraction == pytest.approx(0.0)

    def test_activation_memory_scales_with_micro_batches(self):
        assert simulate_gpipe(4, 16).peak_in_flight == 16
        assert simulate_gpipe(4, 2).peak_in_flight == 2

    def test_bubble_shrinks_with_more_micro_batches(self):
        few = simulate_gpipe(4, 2).bubble_fraction
        many = simulate_gpipe(4, 32).bubble_fraction
        assert many < few

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            simulate_gpipe(0, 4)
        with pytest.raises(ValueError):
            simulate_gpipe(4, 0)


class Test1F1B:
    def test_op_counts(self):
        report = simulate_1f1b(4, 8)
        for stage in range(4):
            slots = report.timelines[stage]
            assert sum(1 for s in slots if s.kind == "F") == 8
            assert sum(1 for s in slots if s.kind == "B") == 8

    def test_dependencies_respected(self):
        _check_dependencies(simulate_1f1b(4, 8))

    def test_no_double_booking(self):
        _check_no_double_booking(simulate_1f1b(3, 7))

    def test_memory_bounded_by_pipeline_depth(self):
        """1F1B's point: live activations <= p, independent of m."""
        report = simulate_1f1b(4, 32)
        assert report.peak_in_flight <= 4
        assert simulate_gpipe(4, 32).peak_in_flight == 32

    def test_no_slower_than_gpipe(self):
        for p, m in [(2, 4), (4, 8), (4, 16), (8, 8)]:
            assert (
                simulate_1f1b(p, m).total_ticks
                <= simulate_gpipe(p, m).total_ticks
            ), (p, m)

    def test_first_stage_warmup_depth(self):
        report = simulate_1f1b(4, 8)
        slots = [s for s in report.timelines[0] if s.kind != "idle"]
        # stage 0 runs p forwards before its first backward
        kinds = [s.kind for s in slots[:5]]
        assert kinds == ["F", "F", "F", "F", "B"]


class TestAnalyticBubble:
    def test_formula(self):
        assert analytic_bubble_fraction(4, 12) == pytest.approx(3 / 15)

    @given(p=st.integers(1, 8), m=st.integers(1, 24))
    @settings(max_examples=40, deadline=None)
    def test_gpipe_matches_per_phase_formula(self, p, m):
        """GPipe's measured bubble equals the analytic value computed
        on its own total ticks: each of F and B waves idles (p-1)
        ticks per stage on average."""
        report = simulate_gpipe(p, m)
        busy = 2 * m  # per stage
        expected = 1.0 - busy / report.total_ticks
        assert report.bubble_fraction == pytest.approx(expected, abs=1e-9)

    @given(p=st.integers(1, 6), m=st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_1f1b_valid_for_any_geometry(self, p, m):
        report = simulate_1f1b(p, m)
        _check_dependencies(report)
        _check_no_double_booking(report)
        assert report.peak_in_flight <= min(m, p)


class TestInterleavedBubble:
    def test_reduces_to_plain_1f1b_at_v1(self):
        from repro.parallel.schedule import analytic_interleaved_bubble

        assert analytic_interleaved_bubble(4, 8, 1) == analytic_bubble_fraction(4, 8)

    def test_more_virtual_stages_shrink_the_bubble(self):
        from repro.parallel.schedule import analytic_interleaved_bubble

        bubbles = [analytic_interleaved_bubble(8, 8, v) for v in (1, 2, 4)]
        assert bubbles[0] > bubbles[1] > bubbles[2]

    def test_megatron_example(self):
        """Megatron's canonical numbers: p=8, m=8, v=2 halves-ish the
        bubble from 7/15 to 7/23."""
        from repro.parallel.schedule import analytic_interleaved_bubble

        assert analytic_interleaved_bubble(8, 8, 2) == pytest.approx(7 / 23)

    def test_bad_virtual_stages_raise(self):
        from repro.parallel.schedule import analytic_interleaved_bubble

        with pytest.raises(ValueError, match="virtual_stages"):
            analytic_interleaved_bubble(4, 8, 0)
