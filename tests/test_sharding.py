"""Tests + properties for the fragment sub-patterns (paper Fig 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.sharding import (
    EvenFragment,
    ExpertFragment,
    Fragmenter,
    FusedSectionsFragment,
    VocabFragment,
)


def roundtrip(frag, full, degree):
    shards = [frag.shard(full, degree, r) for r in range(degree)]
    return frag.join(shards), shards


class TestEvenFragment:
    def test_row_split(self, rng):
        full = rng.standard_normal((8, 3)).astype(np.float32)
        joined, shards = roundtrip(EvenFragment(0), full, 4)
        assert all(s.shape == (2, 3) for s in shards)
        assert np.array_equal(joined, full)

    def test_column_split(self, rng):
        full = rng.standard_normal((3, 8)).astype(np.float32)
        joined, shards = roundtrip(EvenFragment(1), full, 2)
        assert all(s.shape == (3, 4) for s in shards)
        assert np.array_equal(joined, full)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError, match="not divisible"):
            EvenFragment(0).shard(np.zeros((7, 2), dtype=np.float32), 2, 0)

    def test_bad_rank_raises(self):
        with pytest.raises(IndexError):
            EvenFragment(0).shard(np.zeros((4, 2), dtype=np.float32), 2, 5)

    def test_dim_out_of_range_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            EvenFragment(3).shard_shape((4, 4), 2)


class TestFusedSectionsFragment:
    """The GQA QKV sub-pattern: variable-size fused sections."""

    def test_gqa_layout(self, rng):
        # q=8 rows, k=4 rows, v=4 rows (nq=4, nkv=2, head_dim=2)
        frag = FusedSectionsFragment(dim=0, section_sizes=(8, 4, 4))
        full = rng.standard_normal((16, 6)).astype(np.float32)
        shards = [frag.shard(full, 2, r) for r in range(2)]
        # each rank holds [q_r (4); k_r (2); v_r (2)]
        assert shards[0].shape == (8, 6)
        assert np.array_equal(shards[0][:4], full[:4])       # first half of q
        assert np.array_equal(shards[0][4:6], full[8:10])    # first half of k
        assert np.array_equal(shards[0][6:8], full[12:14])   # first half of v
        assert np.array_equal(shards[1][:4], full[4:8])

    def test_round_trip(self, rng):
        frag = FusedSectionsFragment(dim=0, section_sizes=(8, 4, 4))
        full = rng.standard_normal((16, 3)).astype(np.float32)
        joined, _ = roundtrip(frag, full, 4)
        assert np.array_equal(joined, full)

    def test_round_trip_on_bias_vector(self, rng):
        frag = FusedSectionsFragment(dim=0, section_sizes=(8, 4, 4))
        full = rng.standard_normal(16).astype(np.float32)
        joined, _ = roundtrip(frag, full, 2)
        assert np.array_equal(joined, full)

    def test_wrong_total_raises(self):
        frag = FusedSectionsFragment(dim=0, section_sizes=(8, 4, 4))
        with pytest.raises(ValueError, match="section total"):
            frag.shard(np.zeros((15, 2), dtype=np.float32), 2, 0)

    def test_indivisible_section_raises(self):
        frag = FusedSectionsFragment(dim=0, section_sizes=(8, 2, 2))
        with pytest.raises(ValueError, match="not divisible"):
            frag.shard(np.zeros((12, 2), dtype=np.float32), 4, 0)

    def test_empty_sections_raise(self):
        with pytest.raises(ValueError, match="at least one section"):
            FusedSectionsFragment(dim=0, section_sizes=())


class TestExpertFragment:
    """The MoE sub-pattern: 3-dim [experts, out, in] tensors."""

    def test_shards_along_hidden_out(self, rng):
        frag = ExpertFragment(expert_axis=0, shard_dim=1)
        full = rng.standard_normal((4, 8, 6)).astype(np.float32)  # E, I, H
        shards = [frag.shard(full, 2, r) for r in range(2)]
        assert shards[0].shape == (4, 4, 6)  # every expert keeps its slice
        assert np.array_equal(shards[0], full[:, :4, :])
        assert np.array_equal(frag.join(shards), full)

    def test_shard_along_last_dim(self, rng):
        frag = ExpertFragment(expert_axis=0, shard_dim=2)
        full = rng.standard_normal((4, 6, 8)).astype(np.float32)  # E, H, I
        joined, shards = roundtrip(frag, full, 4)
        assert shards[0].shape == (4, 6, 2)
        assert np.array_equal(joined, full)

    def test_cannot_shard_expert_axis(self):
        with pytest.raises(ValueError, match="expert axis"):
            ExpertFragment(expert_axis=0, shard_dim=0)


class TestVocabFragment:
    def test_round_trip_with_padding(self, rng):
        frag = VocabFragment(logical_rows=11)
        full = rng.standard_normal((16, 4)).astype(np.float32)  # padded to 16
        joined, shards = roundtrip(frag, full, 4)
        assert shards[0].shape == (4, 4)
        assert np.array_equal(joined, full)

    def test_padded_height_must_divide(self):
        frag = VocabFragment(logical_rows=11)
        with pytest.raises(ValueError, match="not divisible"):
            frag.shard(np.zeros((18, 2), dtype=np.float32), 4, 0)

    def test_table_shorter_than_vocab_raises(self):
        frag = VocabFragment(logical_rows=20)
        with pytest.raises(ValueError, match="logical vocab"):
            frag.shard_shape((16, 4), 2)


class TestSerialization:
    @pytest.mark.parametrize(
        "frag",
        [
            EvenFragment(dim=1),
            FusedSectionsFragment(dim=0, section_sizes=(8, 4, 4)),
            ExpertFragment(expert_axis=0, shard_dim=2),
            VocabFragment(logical_rows=211),
        ],
    )
    def test_round_trip(self, frag):
        assert Fragmenter.from_dict(frag.to_dict()) == frag

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="unknown fragmenter"):
            Fragmenter.from_dict({"kind": "hologram"})


# --- property-based round-trips over randomized geometries ---

@given(
    rows_per_rank=st.integers(1, 5),
    cols=st.integers(1, 6),
    degree=st.integers(1, 4),
    dim=st.sampled_from([0, 1]),
)
@settings(max_examples=60, deadline=None)
def test_even_fragment_roundtrip_property(rows_per_rank, cols, degree, dim):
    shape = [rows_per_rank * degree, cols]
    if dim == 1:
        shape = [cols, rows_per_rank * degree]
    gen = np.random.default_rng(0)
    full = gen.standard_normal(shape).astype(np.float32)
    frag = EvenFragment(dim=dim)
    shards = [frag.shard(full, degree, r) for r in range(degree)]
    assert np.array_equal(frag.join(shards), full)
    assert all(tuple(s.shape) == frag.shard_shape(tuple(full.shape), degree) for s in shards)


@given(
    q_heads_per_rank=st.integers(1, 4),
    kv_heads_per_rank=st.integers(1, 2),
    head_dim=st.sampled_from([2, 4]),
    degree=st.integers(1, 4),
    hidden=st.integers(2, 5),
)
@settings(max_examples=60, deadline=None)
def test_gqa_fragment_roundtrip_property(
    q_heads_per_rank, kv_heads_per_rank, head_dim, degree, hidden
):
    """Property: fused variable-size QKV shards always rejoin exactly."""
    q = q_heads_per_rank * degree * head_dim
    kv = kv_heads_per_rank * degree * head_dim
    frag = FusedSectionsFragment(dim=0, section_sizes=(q, kv, kv))
    gen = np.random.default_rng(degree)
    full = gen.standard_normal((q + 2 * kv, hidden)).astype(np.float32)
    shards = [frag.shard(full, degree, r) for r in range(degree)]
    assert np.array_equal(frag.join(shards), full)


@given(
    experts=st.integers(1, 4),
    per_rank=st.integers(1, 4),
    degree=st.integers(1, 4),
    inner=st.integers(1, 4),
    shard_dim=st.sampled_from([1, 2]),
)
@settings(max_examples=60, deadline=None)
def test_expert_fragment_roundtrip_property(experts, per_rank, degree, inner, shard_dim):
    shape = [experts, per_rank * degree, inner]
    if shard_dim == 2:
        shape = [experts, inner, per_rank * degree]
    gen = np.random.default_rng(7)
    full = gen.standard_normal(shape).astype(np.float32)
    frag = ExpertFragment(expert_axis=0, shard_dim=shard_dim)
    shards = [frag.shard(full, degree, r) for r in range(degree)]
    assert np.array_equal(frag.join(shards), full)
