"""Tests for CheckFreq-style snapshots and Gemini-style in-memory ckpts."""

import numpy as np
import pytest

from repro.ckpt.inmemory import InMemoryCheckpoint, InMemoryCheckpointError
from repro.ckpt.snapshot import (
    SnapshotManager,
    tune_checkpoint_interval,
)
from repro.dist.topology import ParallelConfig

from tests.helpers import make_engine


class TestSnapshotConsistency:
    def test_persist_after_more_training_matches_sync_save(self, tmp_path):
        """The CheckFreq property: a snapshot at step t persists the
        same bytes a synchronous save at t would, even though training
        ran on before the persist."""
        engine = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=7)
        engine.train(3)
        sync_dir = str(tmp_path / "sync")
        engine.save_checkpoint(sync_dir)

        engine2 = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=7)
        engine2.train(3)
        manager = SnapshotManager(engine2)
        snap = manager.snapshot()
        engine2.train(4)  # training advances past the snapshot
        async_dir = str(tmp_path / "async")
        info = manager.persist(snap, async_dir)
        assert info.step == 3

        resumed_sync = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=0)
        resumed_sync.load_checkpoint(sync_dir)
        resumed_async = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=0)
        resumed_async.load_checkpoint(async_dir)
        a = [r.loss for r in resumed_sync.train(2)]
        b = [r.loss for r in resumed_async.train(2)]
        assert a == b  # bit-exact

    def test_snapshot_is_isolated_from_future_updates(self):
        engine = make_engine()
        engine.train(2)
        manager = SnapshotManager(engine)
        snap = manager.snapshot()
        before = snap.zero.consolidated_tensors("fp32")["final_norm.weight"].copy()
        engine.train(3)
        after = snap.zero.consolidated_tensors("fp32")["final_norm.weight"]
        assert np.array_equal(before, after)

    def test_pending_tracking_and_drain(self, tmp_path):
        engine = make_engine()
        engine.train(1)
        manager = SnapshotManager(engine)
        manager.save_async(str(tmp_path / "a"))
        engine.train(1)
        manager.save_async(str(tmp_path / "b"))
        assert manager.pending_count == 2
        infos = manager.drain()
        assert manager.pending_count == 0
        assert [i.step for i in infos] == [1, 2]

    def test_snapshot_checkpoint_is_ucp_convertible(self, tmp_path):
        """Snapshots persist standard distributed checkpoints, so UCP
        conversion composes."""
        from repro.core.resume import resume_training

        engine = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=7)
        engine.train(2)
        manager = SnapshotManager(engine)
        snap = manager.snapshot()
        continued = [r.loss for r in engine.train(2)]
        manager.persist(snap, str(tmp_path))
        resumed = resume_training(str(tmp_path), ParallelConfig(dp=2))
        b = [r.loss for r in resumed.train(2)]
        assert np.allclose(continued, b, atol=2e-2)


class TestFrequencyTuning:
    def test_interval_meets_budget(self):
        plan = tune_checkpoint_interval(
            step_time_s=1.0, snapshot_time_s=0.5, max_overhead_fraction=0.05
        )
        overhead = 0.5 / (plan.interval_steps * 1.0 + 0.5)
        assert overhead <= 0.05
        # and the next-smaller interval would violate it
        smaller = plan.interval_steps - 1
        if smaller >= 1:
            assert 0.5 / (smaller * 1.0 + 0.5) > 0.05

    def test_cheap_snapshots_allow_every_step(self):
        plan = tune_checkpoint_interval(
            step_time_s=1.0, snapshot_time_s=0.001, max_overhead_fraction=0.05
        )
        assert plan.interval_steps == 1

    def test_expected_loss_is_half_interval(self):
        plan = tune_checkpoint_interval(1.0, 0.5, 0.05)
        assert plan.expected_lost_steps_on_failure == plan.interval_steps / 2

    def test_bad_inputs_raise(self):
        with pytest.raises(ValueError):
            tune_checkpoint_interval(0.0, 0.1)
        with pytest.raises(ValueError):
            tune_checkpoint_interval(1.0, 0.1, max_overhead_fraction=1.5)


class TestInMemoryCheckpoint:
    def test_recovery_restores_training_bitwise(self):
        engine = make_engine(parallel=ParallelConfig(tp=2, dp=2), seed=7)
        engine.train(3)
        mem = InMemoryCheckpoint(engine, replication_factor=2)
        mem.commit()
        reference = [r.loss for r in engine.train(2)]

        # lose a rank, re-provision (same topology), recover from peers
        engine.cluster.fail_rank(1)
        engine.cluster.heal_rank(1)
        mem.recover(failed_ranks={1})
        assert engine.iteration == 3
        resumed = [r.loss for r in engine.train(2)]
        assert reference == resumed

    def test_replicas_avoid_owner_rank(self):
        engine = make_engine(parallel=ParallelConfig(tp=2, dp=2))
        engine.train(1)
        mem = InMemoryCheckpoint(engine, replication_factor=2)
        mem.commit()
        for (coord, dp_rank), replicas in mem._replicas.items():
            owner = mem._owner_rank(coord, dp_rank)
            assert all(r.host_rank != owner for r in replicas)

    def test_losing_all_replicas_is_detected(self):
        engine = make_engine(parallel=ParallelConfig(dp=2), seed=3)
        engine.train(1)
        mem = InMemoryCheckpoint(engine, replication_factor=1)
        mem.commit()
        # with replication 1 on a 2-rank world, failing both hosts kills it
        with pytest.raises(InMemoryCheckpointError, match="every replica"):
            mem.recover(failed_ranks={0, 1})

    def test_survivor_counting(self):
        engine = make_engine(parallel=ParallelConfig(tp=2, dp=2))
        engine.train(1)
        mem = InMemoryCheckpoint(engine, replication_factor=2)
        mem.commit()
        counts = mem.surviving_replicas(failed_ranks={0})
        assert all(c >= 1 for c in counts.values())

    def test_commit_accounts_traffic(self):
        engine = make_engine(parallel=ParallelConfig(dp=2))
        engine.train(1)
        before = engine.cluster.tracker.count("broadcast")
        mem = InMemoryCheckpoint(engine, replication_factor=2)
        copied = mem.commit()
        assert copied > 0
        assert mem.memory_bytes == copied
        assert engine.cluster.tracker.count("broadcast") == before + 1

    def test_recover_without_commit_raises(self):
        engine = make_engine()
        mem = InMemoryCheckpoint(engine, replication_factor=1)
        with pytest.raises(InMemoryCheckpointError, match="no committed"):
            mem.recover(set())

    def test_bad_replication_factor(self):
        engine = make_engine(parallel=ParallelConfig(dp=2))
        with pytest.raises(ValueError, match="replication factor"):
            InMemoryCheckpoint(engine, replication_factor=3)

    def test_commit_overwrites_previous(self):
        engine = make_engine(parallel=ParallelConfig(dp=2), seed=5)
        engine.train(1)
        mem = InMemoryCheckpoint(engine, replication_factor=1)
        mem.commit()
        engine.train(2)
        mem.commit()
        mem.recover(set())
        assert engine.iteration == 3
