"""Tests for SP helpers, the transformer block, and deterministic init."""

import numpy as np
import pytest

from repro.dist.topology import ParallelConfig
from repro.nn.block import TransformerBlock
from repro.nn.init import generator_for, normal_init, ones_init, zeros_init
from repro.nn.norm import LayerNorm
from repro.parallel.sp import (
    average_param_copies,
    perturb_copies_for_demo,
    sp_replication_factor,
)

from tests.helpers import make_engine


class TestSPHelpers:
    def test_replication_factor(self):
        assert sp_replication_factor(ParallelConfig(sp=4)) == 4

    def test_average_of_identical_copies_is_exact(self, rng):
        base = rng.standard_normal(16).astype(np.float32)
        assert np.array_equal(average_param_copies([base, base.copy()]), base)

    def test_average_is_elementwise_mean(self):
        a = np.array([1.0, 2.0], dtype=np.float32)
        b = np.array([3.0, 6.0], dtype=np.float32)
        assert np.allclose(average_param_copies([a, b]), [2.0, 4.0])

    def test_average_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape"):
            average_param_copies([np.zeros(2, np.float32), np.zeros(3, np.float32)])

    def test_average_empty_raises(self):
        with pytest.raises(ValueError, match="zero copies"):
            average_param_copies([])

    def test_perturb_is_deterministic(self, rng):
        base = rng.standard_normal(8).astype(np.float32)
        a = perturb_copies_for_demo(base, 3, seed=5)
        b = perturb_copies_for_demo(base, 3, seed=5)
        for rank in range(3):
            assert np.array_equal(a[rank], b[rank])

    def test_perturb_copies_differ_across_ranks(self, rng):
        base = rng.standard_normal(8).astype(np.float32)
        copies = perturb_copies_for_demo(base, 2, seed=1)
        assert not np.array_equal(copies[0], copies[1])


class TestTransformerBlock:
    class _AddOne:
        """A stand-in layer: y = x + 1, backward is identity."""

        def __call__(self, x):
            return x + 1.0

        def forward(self, x):
            return x + 1.0

        def backward(self, grad):
            return grad

    def test_residual_structure(self, rng):
        block = TransformerBlock(
            norm1=self._AddOne(), attn=self._AddOne(),
            norm2=self._AddOne(), ffn=self._AddOne(),
        )
        x = rng.standard_normal((2, 3, 4)).astype(np.float32)
        # h = x + (x + 2); y = h + (h + 2)
        expected = 2 * (2 * x + 2) + 2
        assert np.allclose(block.forward(x), expected)

    def test_backward_doubles_through_residuals(self, rng):
        block = TransformerBlock(
            norm1=self._AddOne(), attn=self._AddOne(),
            norm2=self._AddOne(), ffn=self._AddOne(),
        )
        x = rng.standard_normal((1, 2, 4)).astype(np.float32)
        block.forward(x)
        grad = np.ones_like(x)
        grad_in = block.backward(grad)
        assert np.allclose(grad_in, 4.0)  # two residual doublings

    def test_parameters_collected_from_children(self):
        from repro.nn.module import Module

        class NoOp(Module):
            def forward(self, x):
                return x

            def backward(self, grad):
                return grad

        block = TransformerBlock(LayerNorm(4), NoOp(), LayerNorm(4), NoOp())
        names = [n for n, _ in block.named_parameters()]
        assert names == [
            "norm1.weight", "norm1.bias", "norm2.weight", "norm2.bias",
        ]


class TestDeterministicInit:
    def test_same_key_same_stream(self):
        a = generator_for(1, "blocks.0.attn.qkv.weight").standard_normal(5)
        b = generator_for(1, "blocks.0.attn.qkv.weight").standard_normal(5)
        assert np.array_equal(a, b)

    def test_different_names_different_streams(self):
        a = generator_for(1, "a").standard_normal(5)
        b = generator_for(1, "b").standard_normal(5)
        assert not np.array_equal(a, b)

    def test_normal_init_std(self):
        values = normal_init(0, "x", (100_000,), std=0.02)
        assert abs(float(values.std()) - 0.02) < 0.002

    def test_zeros_and_ones(self):
        assert np.array_equal(zeros_init((3,)), np.zeros(3))
        assert np.array_equal(ones_init((3,)), np.ones(3))

    def test_engine_init_is_topology_independent(self):
        """Two engines with the same seed but different topologies hold
        identical initial weights (Fig 7's prerequisite)."""
        a = make_engine(parallel=ParallelConfig(tp=2, pp=2, dp=2), seed=9)
        b = make_engine(parallel=ParallelConfig(), seed=9)
        sa, sb = a.model.state_dict(), b.model.state_dict()
        for name in sa:
            assert np.array_equal(sa[name], sb[name]), name


class TestUlyssesExchange:
    def _shards(self, rng, sp=2, seq=8, heads=4, dim=3):
        full = rng.standard_normal((seq, heads, dim)).astype(np.float32)
        chunk = seq // sp
        return full, [full[r * chunk : (r + 1) * chunk] for r in range(sp)]

    def test_produces_head_split_layout(self, rng):
        from repro.parallel.sp import ulysses_exchange

        full, shards = self._shards(rng)
        out = ulysses_exchange(shards, num_heads=4)
        # rank r now holds the FULL sequence for its head slice
        assert out[0].shape == (8, 2, 3)
        assert np.array_equal(out[0], full[:, :2, :])
        assert np.array_equal(out[1], full[:, 2:, :])

    def test_exchange_preserves_every_element(self, rng):
        from repro.parallel.sp import ulysses_exchange

        full, shards = self._shards(rng, sp=4, seq=8, heads=8)
        out = ulysses_exchange(shards, num_heads=8)
        reassembled = np.concatenate(out, axis=1)
        assert np.array_equal(reassembled, full)

    def test_indivisible_heads_raise(self):
        from repro.parallel.sp import ulysses_exchange

        # 3 ranks do not divide 4 heads
        full = np.zeros((6, 4, 2), dtype=np.float32)
        thirds = [full[:2], full[2:4], full[4:]]
        with pytest.raises(ValueError, match="not divisible"):
            ulysses_exchange(thirds, num_heads=4)

    def test_wrong_shape_raises(self):
        from repro.parallel.sp import ulysses_exchange

        with pytest.raises(ValueError, match="expected"):
            ulysses_exchange([np.zeros((4, 4), dtype=np.float32)], num_heads=4)
