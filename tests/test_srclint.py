"""AST source lint: every rule fires on an injection and stays quiet on
the patterns the codebase legitimately uses.

The safe-shape tests encode the lint's precision contract: the exact
idioms ``src/repro`` relies on (returning collective results from
``ProcessGroup``, slice-storing ``frombuffer`` reads into fresh buffers,
``sorted()``-wrapped set iteration) must never be flagged — the final
test pins the whole tree lint-clean against the committed empty
baseline.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.analysis.srclint import (
    apply_baseline,
    baseline_counts,
    lint_source_file,
    lint_source_tree,
    stale_baseline_entries,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_snippet(tmp_path, source: str):
    path = tmp_path / "snippet.py"
    path.write_text(source)
    return lint_source_file(path, "snippet.py")


def rules(findings):
    return [d.rule_id for d in findings]


class TestSRC001CollectiveResultNoCopy:
    @pytest.mark.parametrize("snippet", [
        "self.results = group.all_reduce(shards)\n",
        "acc.append(all_gather(shards))\n",
        "state['grads'] = broadcast(x, 4)\n",
        "pair = [all_to_all(chunks), extra]\n",
        "cache.setdefault(k, reduce_scatter(shards))\n",
    ], ids=["attr", "append", "keyed", "literal", "setdefault"])
    def test_escaping_result_fires(self, tmp_path, snippet):
        assert rules(lint_snippet(tmp_path, snippet)) == ["SRC001"]

    @pytest.mark.parametrize("snippet", [
        "out = all_reduce(shards)\n",                      # local name
        "def f(s):\n    return all_reduce(s)\n",           # the API itself
        "y = group.all_reduce(p, op='sum')[0]\n",          # indexed local
        "acc.append(all_gather(s)[0].copy())\n",           # defensive copy
        "n = len(all_gather(s))\n",                        # scalar consumer
    ], ids=["name", "return", "indexed", "copied", "len"])
    def test_safe_shapes_pass(self, tmp_path, snippet):
        assert lint_snippet(tmp_path, snippet) == []


class TestSRC002FrombufferEscape:
    @pytest.mark.parametrize("snippet", [
        "def f(b):\n    return np.frombuffer(b, dtype='f4')\n",
        "self.arr = np.frombuffer(buf)\n",
        "def f(b):\n    return np.frombuffer(b).reshape(2, 2)\n",
        "views['k'] = np.frombuffer(buf)\n",
        "out.append(np.frombuffer(buf))\n",
    ], ids=["return", "attr", "reshape-return", "keyed", "append"])
    def test_escaping_view_fires(self, tmp_path, snippet):
        assert rules(lint_snippet(tmp_path, snippet)) == ["SRC002"]

    @pytest.mark.parametrize("snippet", [
        # the repo's three legitimate shapes:
        "arr[a:b] = np.frombuffer(buf, dtype='f4', count=n)\n",  # ops/convert
        "arr = np.frombuffer(raw)\n",                            # serializer
        "def f(b):\n    return np.frombuffer(b).reshape(2).copy()\n",
        "total = np.frombuffer(b).sum()\n",                      # scalarized
    ], ids=["slice-store", "name", "copy-return", "reduced"])
    def test_safe_shapes_pass(self, tmp_path, snippet):
        assert lint_snippet(tmp_path, snippet) == []


class TestSRC003UnorderedSetIteration:
    @pytest.mark.parametrize("snippet", [
        "for k in set(xs):\n    emit(k)\n",
        "ys = [k for k in set(xs)]\n",
        "ys = list({1, 2} | {3})\n",
        "for k in set(a) | set(b):\n    emit(k)\n",
        "s = ','.join({str(x) for x in xs})\n",
    ], ids=["for", "comp", "list-union", "for-union", "join"])
    def test_unordered_iteration_fires(self, tmp_path, snippet):
        assert rules(lint_snippet(tmp_path, snippet)) == ["SRC003"]

    @pytest.mark.parametrize("snippet", [
        "ks = sorted(k for k in set(a) | set(b) if k in a)\n",  # convert.py
        "ks = sorted(set(xs))\n",
        "n = len(set(xs))\n",
        "ok = any(k in a for k in xs)\n",
        "for k in sorted(set(xs)):\n    emit(k)\n",
    ], ids=["sorted-genexp", "sorted", "len", "any", "for-sorted"])
    def test_order_insensitive_consumers_pass(self, tmp_path, snippet):
        assert lint_snippet(tmp_path, snippet) == []


class TestSRC003SetTypedVariables:
    """SRC003 follows set-typed *variables* into later iterations —
    the laundering gap: ``s = set(xs)`` then ``for k in s``."""

    @pytest.mark.parametrize("snippet", [
        "def f(xs):\n    s = set(xs)\n    for k in s:\n        emit(k)\n",
        "def f(xs):\n    s = set(xs)\n    return [k for k in s]\n",
        "def f(a, b):\n    s = set(a) | set(b)\n    for k in s:\n        emit(k)\n",
        "def f(xs):\n    s = {x for x in xs}\n    for k in s:\n        emit(k)\n",
        "def f(a, b):\n    s = set(a)\n    s |= set(b)\n    for k in s:\n        emit(k)\n",
        "s = set(xs)\nfor k in s:\n    emit(k)\n",
    ], ids=["var", "var-comp", "union-var", "setcomp-var", "augassign",
            "module-scope"])
    def test_set_typed_variable_iteration_fires(self, tmp_path, snippet):
        assert rules(lint_snippet(tmp_path, snippet)) == ["SRC003"]

    @pytest.mark.parametrize("snippet", [
        # order-insensitive consumption of a set variable
        "def f(xs):\n    s = set(xs)\n    for k in sorted(s):\n        emit(k)\n",
        "def f(xs):\n    s = set(xs)\n    return len(s)\n",
        "def f(xs, y):\n    s = set(xs)\n    return y in s\n",
        # rebound to an ordered type before the loop
        "def f(xs):\n    s = set(xs)\n    s = sorted(s)\n    for k in s:\n"
        "        emit(k)\n",
        # a bare parameter is not known to be a set
        "def f(s):\n    for k in s:\n        emit(k)\n",
        # loop targets shadow outer set variables within their scope
        "def f(xs, rows):\n    s = set(xs)\n    del s\n"
        "    for s in rows:\n        for k in s:\n            emit(k)\n",
        # a nested function's set doesn't taint the outer name
        "def f(xs):\n    def g():\n        s = set(xs)\n        return len(s)\n"
        "    s = list(xs)\n    for k in s:\n        emit(k)\n",
    ], ids=["sorted-var", "len-var", "membership", "rebound", "param",
            "loop-shadow", "nested-scope"])
    def test_safe_variable_shapes_pass(self, tmp_path, snippet):
        assert lint_snippet(tmp_path, snippet) == []

    def test_suppression_applies_to_variable_iteration(self, tmp_path):
        src = (
            "s = set(xs)\n"
            "for k in s:  # srclint: disable=SRC003\n"
            "    emit(k)\n"
        )
        assert lint_snippet(tmp_path, src) == []


class TestSRC004MutableDefaultArgument:
    @pytest.mark.parametrize("snippet", [
        "def f(x, acc=[]):\n    pass\n",
        "def f(x, opts={}):\n    pass\n",
        "def f(x, buf=np.zeros(4)):\n    pass\n",
        "def f(x, *, seen=set()):\n    pass\n",
    ], ids=["list", "dict", "ndarray", "kwonly-set"])
    def test_mutable_default_fires(self, tmp_path, snippet):
        found = lint_snippet(tmp_path, snippet)
        assert rules(found) == ["SRC004"]
        # promoted to error once the tree was clean (ISSUE 7 satellite)
        assert all(d.severity == "error" for d in found)

    def test_none_and_immutable_defaults_pass(self, tmp_path):
        assert lint_snippet(
            tmp_path, "def f(x, acc=None, k=3, name='a', t=()):\n    pass\n"
        ) == []


class TestSuppression:
    def test_disable_all_rules_on_line(self, tmp_path):
        src = "for k in set(xs):  # srclint: disable\n    pass\n"
        assert lint_snippet(tmp_path, src) == []

    def test_disable_specific_rule(self, tmp_path):
        src = "for k in set(xs):  # srclint: disable=SRC003\n    pass\n"
        assert lint_snippet(tmp_path, src) == []

    def test_other_rule_suppression_does_not_apply(self, tmp_path):
        src = "for k in set(xs):  # srclint: disable=SRC001\n    pass\n"
        assert rules(lint_snippet(tmp_path, src)) == ["SRC003"]


class TestBaseline:
    def test_roundtrip_silences_known_findings(self, tmp_path):
        (tmp_path / "m.py").write_text("self.r = all_reduce(s)\n")
        report = lint_source_tree(tmp_path)
        assert not report.ok
        baseline = baseline_counts(report)
        assert baseline == {f"SRC001:{tmp_path.name}/m.py": 1}
        assert apply_baseline(report, baseline).ok

    def test_new_findings_exceed_baseline(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "self.r = all_reduce(s)\nself.q = all_gather(s)\n"
        )
        report = lint_source_tree(tmp_path)
        residual = apply_baseline(
            report, {f"SRC001:{tmp_path.name}/m.py": 1}
        )
        assert len(residual.diagnostics) == 1

    def test_stale_entries_are_detected(self, tmp_path):
        """Shrink-only: an entry the tree no longer produces (fully or
        in part) must be surfaced, not silently carried."""
        (tmp_path / "m.py").write_text("self.r = all_reduce(s)\n")
        report = lint_source_tree(tmp_path)
        baseline = baseline_counts(report)
        assert stale_baseline_entries(report, baseline) == []
        baseline[f"SRC002:{tmp_path.name}/gone.py"] = 1
        assert stale_baseline_entries(report, baseline) == [
            f"SRC002:{tmp_path.name}/gone.py"
        ]
        # a count above what the tree still produces is stale too
        assert stale_baseline_entries(
            report, {f"SRC001:{tmp_path.name}/m.py": 2}
        ) == [f"SRC001:{tmp_path.name}/m.py"]


class TestCLI:
    def test_lint_src_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint-src", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_src_finding_exits_one_with_location(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("self.r = all_reduce(s)\n")
        assert main(["lint-src", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "SRC001" in out and "bad.py:1" in out

    def test_json_format_is_stable(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("self.r = all_reduce(s)\n")
        main(["lint-src", str(tmp_path), "--format", "json"])
        first = capsys.readouterr().out
        main(["lint-src", str(tmp_path), "--format", "json"])
        second = capsys.readouterr().out
        assert first == second
        doc = json.loads(first)
        assert doc["num_errors"] == 1
        assert doc["diagnostics"][0]["rule_id"] == "SRC001"

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("self.r = all_reduce(s)\n")
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint-src", str(tmp_path), "--write-baseline", str(baseline)
        ]) == 0
        capsys.readouterr()
        assert main([
            "lint-src", str(tmp_path), "--baseline", str(baseline)
        ]) == 0

    def test_stale_baseline_entry_fails_the_run(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps({f"SRC001:{tmp_path.name}/gone.py": 1})
        )
        assert main([
            "lint-src", str(tmp_path), "--baseline", str(baseline)
        ]) == 1
        err = capsys.readouterr().err
        assert "stale baseline entry" in err and "gone.py" in err

    def test_locks_mode_reports_only_lock_rules(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "self.r = all_reduce(s)\n"                       # SRC001
            "def f(lock, fut):\n"
            "    with lock:\n"
            "        fut.result()\n"                         # SRC007
        )
        assert main(["lint-src", str(tmp_path), "--locks"]) == 1
        out = capsys.readouterr().out
        assert "SRC007" in out and "SRC001" not in out
        capsys.readouterr()
        assert main(["lint-src", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "SRC007" in out and "SRC001" in out

    def test_default_root_is_the_installed_package(self, capsys):
        assert main(["lint-src"]) == 0
        assert "repro" in capsys.readouterr().out


class TestRepoIsClean:
    def test_source_tree_has_no_findings(self):
        report = lint_source_tree(Path(repro.__file__).parent)
        assert report.diagnostics == [], report.render_text()

    def test_committed_baseline_is_empty(self):
        baseline = json.loads(
            (REPO_ROOT / "srclint-baseline.json").read_text()
        )
        assert baseline == {}

    def test_cli_gate_deterministic_under_hash_seeds(self):
        """The CI gate's exact invocation, run under two hash seeds."""
        outputs = []
        for seed in ("0", "12345"):
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "lint-src",
                 "--format", "json",
                 "--baseline", str(REPO_ROOT / "srclint-baseline.json")],
                capture_output=True,
                text=True,
                cwd=str(REPO_ROOT),
                env={
                    "PYTHONPATH": str(REPO_ROOT / "src"),
                    "PYTHONHASHSEED": seed,
                    "PATH": "/usr/bin:/bin",
                },
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
