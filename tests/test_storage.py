"""Tests for the storage substrate: serializer, object store, NVMe model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.nvme import NVMeModel
from repro.storage.serializer import (
    SerializationError,
    deserialize,
    serialize,
)
from repro.storage.store import ObjectStore


class TestSerializer:
    def test_round_trip_nested(self, rng):
        obj = {
            "weights": rng.standard_normal((3, 4)).astype(np.float32),
            "meta": {"step": 100, "name": "gpt", "flag": True, "none": None},
            "history": [1.5, 2.5, {"inner": rng.standard_normal(5).astype(np.float32)}],
        }
        out = deserialize(serialize(obj))
        assert np.array_equal(out["weights"], obj["weights"])
        assert out["meta"] == obj["meta"]
        assert out["history"][:2] == [1.5, 2.5]
        assert np.array_equal(out["history"][2]["inner"], obj["history"][2]["inner"])

    def test_preserves_dtypes(self):
        obj = {
            "f32": np.zeros(3, dtype=np.float32),
            "f16": np.zeros(3, dtype=np.float16),
            "i64": np.arange(3, dtype=np.int64),
        }
        out = deserialize(serialize(obj))
        assert out["f32"].dtype == np.float32
        assert out["f16"].dtype == np.float16
        assert out["i64"].dtype == np.int64

    def test_tuple_becomes_list(self):
        assert deserialize(serialize({"t": (1, 2)}))["t"] == [1, 2]

    def test_numpy_scalars_become_python(self):
        out = deserialize(serialize({"i": np.int64(5), "f": np.float32(1.5)}))
        assert out == {"i": 5, "f": 1.5}

    def test_reserved_key_raises(self):
        with pytest.raises(SerializationError, match="reserved"):
            serialize({"__tensor__": 1})

    def test_non_string_key_raises(self):
        with pytest.raises(SerializationError, match="keys must be str"):
            serialize({1: "a"})

    def test_unsupported_type_raises(self):
        with pytest.raises(SerializationError, match="unsupported type"):
            serialize({"f": lambda: None})

    def test_bad_magic_raises(self):
        with pytest.raises(SerializationError, match="magic"):
            deserialize(b"NOPE" + b"\x00" * 100)

    def test_truncated_file_raises(self):
        data = serialize({"x": np.arange(100, dtype=np.float32)})
        with pytest.raises(SerializationError, match="truncated"):
            deserialize(data[: len(data) // 2])

    def test_empty_array(self):
        out = deserialize(serialize({"e": np.zeros(0, dtype=np.float32)}))
        assert out["e"].size == 0

    @given(
        shapes=st.lists(
            st.lists(st.integers(1, 5), min_size=1, max_size=3), min_size=0, max_size=4
        ),
        scalars=st.dictionaries(
            st.text(st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=6),
            st.one_of(st.integers(-1000, 1000), st.booleans(), st.none(),
                      st.floats(allow_nan=False, allow_infinity=False, width=32)),
            max_size=4,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, shapes, scalars):
        gen = np.random.default_rng(0)
        obj = dict(scalars)
        arrays = {
            f"tensor_{i}": gen.standard_normal(shape).astype(np.float32)
            for i, shape in enumerate(shapes)
        }
        obj.update(arrays)
        out = deserialize(serialize(obj))
        for key, value in scalars.items():
            if key in arrays:
                continue
            assert out[key] == value or (value is None and out[key] is None)
        for key, arr in arrays.items():
            assert np.array_equal(out[key], arr)


class TestObjectStore:
    def test_save_load_round_trip(self, tmp_path, rng):
        store = ObjectStore(str(tmp_path))
        obj = {"x": rng.standard_normal(10).astype(np.float32)}
        nbytes = store.save("sub/dir/file.npt", obj)
        assert nbytes > 0
        out = store.load("sub/dir/file.npt")
        assert np.array_equal(out["x"], obj["x"])

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ObjectStore(str(tmp_path)).load("ghost.npt")

    def test_exists_and_delete(self, tmp_path):
        store = ObjectStore(str(tmp_path))
        store.save("a.npt", {"v": 1})
        assert store.exists("a.npt")
        store.delete("a.npt")
        assert not store.exists("a.npt")
        store.delete("a.npt")  # idempotent

    def test_list_sorted_recursive(self, tmp_path):
        store = ObjectStore(str(tmp_path))
        store.save("b/2.npt", {"v": 1})
        store.save("a/1.npt", {"v": 1})
        assert store.list() == ["a/1.npt", "b/2.npt"]
        assert store.list("a") == ["a/1.npt"]

    def test_path_escape_rejected(self, tmp_path):
        store = ObjectStore(str(tmp_path / "inner"))
        with pytest.raises(ValueError, match="escapes"):
            store.save("../outside.npt", {"v": 1})

    def test_byte_accounting(self, tmp_path, rng):
        store = ObjectStore(str(tmp_path))
        n = store.save("x.npt", {"x": rng.standard_normal(100).astype(np.float32)})
        store.load("x.npt")
        assert store.bytes_written == n
        assert store.bytes_read == n
        store.reset_accounting()
        assert store.bytes_written == 0

    def test_simulated_time_accumulates(self, tmp_path, rng):
        store = ObjectStore(str(tmp_path))
        store.save("x.npt", {"x": rng.standard_normal(1000).astype(np.float32)})
        store.load("x.npt")
        assert store.simulated_write_s > 0
        assert store.simulated_read_s > 0

    def test_text_markers(self, tmp_path):
        store = ObjectStore(str(tmp_path))
        store.write_text("latest", "global_step100")
        assert store.read_text("latest") == "global_step100"


class TestNVMeModel:
    def test_time_scales_with_bytes(self):
        nvme = NVMeModel()
        assert nvme.read_time(10**9) > nvme.read_time(10**6)

    def test_latency_floor(self):
        nvme = NVMeModel(latency_s=1e-3)
        assert nvme.read_time(0) == pytest.approx(1e-3)

    def test_parallelism_amortizes_latency(self):
        nvme = NVMeModel(latency_s=1e-3)
        assert nvme.read_time(0, parallel=4) == pytest.approx(2.5e-4)

    def test_parallelism_capped_at_queue_depth(self):
        nvme = NVMeModel(latency_s=1e-3, max_parallel=4)
        assert nvme.read_time(0, parallel=100) == nvme.read_time(0, parallel=4)

    def test_writes_slower_than_reads(self):
        nvme = NVMeModel(read_gbps=3.2, write_gbps=1.8)
        nbytes = 10**9
        assert nvme.write_time(nbytes) > nvme.read_time(nbytes)

    def test_negative_bytes_raise(self):
        with pytest.raises(ValueError, match=">= 0"):
            NVMeModel().read_time(-1)

    def test_bad_profile_raises(self):
        with pytest.raises(ValueError, match="positive"):
            NVMeModel(read_gbps=0)


class TestChecksums:
    def test_flipped_payload_byte_detected(self, rng):
        from repro.storage.serializer import ChecksumError
        data = bytearray(serialize({"x": rng.standard_normal(64).astype(np.float32)}))
        data[-5] ^= 0xFF  # corrupt a tensor payload byte
        with pytest.raises(ChecksumError, match="CRC32"):
            deserialize(bytes(data))

    def test_verification_can_be_disabled(self, rng):
        import io
        from repro.storage.serializer import read_npt
        data = bytearray(serialize({"x": rng.standard_normal(64).astype(np.float32)}))
        data[-5] ^= 0xFF
        out = read_npt(io.BytesIO(bytes(data)), verify_checksums=False)
        assert out["x"].shape == (64,)

    def test_files_without_checksums_still_read(self, rng):
        """Forward compatibility: pre-checksum files lack the crc32
        field and must load without error."""
        import json
        from repro.storage.serializer import MAGIC
        data = serialize({"x": rng.standard_normal(8).astype(np.float32)})
        header_len = int.from_bytes(data[4:12], "little")
        header = json.loads(data[12 : 12 + header_len].decode())
        for entry in header["tensors"]:
            entry.pop("crc32", None)
        new_header = json.dumps(header).encode()
        # only safe if the header length is preserved; pad with spaces
        assert len(new_header) <= header_len
        new_header = new_header + b" " * (header_len - len(new_header))
        patched = data[:12] + new_header + data[12 + header_len:]
        out = deserialize(patched)
        assert out["x"].shape == (8,)

    def test_checksum_error_is_a_serialization_error(self):
        from repro.storage.serializer import ChecksumError
        assert issubclass(ChecksumError, SerializationError)


class TestDurability:
    def test_default_follows_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_DURABLE", raising=False)
        assert ObjectStore(str(tmp_path)).durable is True
        monkeypatch.setenv("REPRO_DURABLE", "0")
        assert ObjectStore(str(tmp_path)).durable is False
        monkeypatch.setenv("REPRO_DURABLE", "1")
        assert ObjectStore(str(tmp_path)).durable is True

    def test_explicit_flag_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DURABLE", "0")
        assert ObjectStore(str(tmp_path), durable=True).durable is True
        monkeypatch.setenv("REPRO_DURABLE", "1")
        assert ObjectStore(str(tmp_path), durable=False).durable is False

    def test_durable_commit_round_trips_with_no_tmp_left(self, tmp_path, rng):
        store = ObjectStore(str(tmp_path), durable=True)
        obj = {"x": rng.standard_normal(16).astype(np.float32)}
        store.save("tag/file.npt", obj)
        assert np.array_equal(store.load("tag/file.npt")["x"], obj["x"])
        assert not list(tmp_path.rglob("*.tmp"))

    def test_durable_write_text_round_trips(self, tmp_path):
        store = ObjectStore(str(tmp_path), durable=True)
        store.write_text("latest", "global_step7")
        assert store.read_text("latest") == "global_step7"
        assert not list(tmp_path.rglob("*.tmp"))

    def test_failed_commit_cleans_its_tmp(self, tmp_path, monkeypatch):
        """A mid-commit error (here: the publishing rename itself) must
        not leak the temp file."""
        store = ObjectStore(str(tmp_path), durable=True)

        def boom(src, dst):
            raise OSError("simulated rename failure")

        monkeypatch.setattr("os.replace", boom)
        with pytest.raises(OSError, match="simulated rename"):
            store.put_bytes("x.npt", b"data")
        assert not list(tmp_path.rglob("*.tmp"))
        assert not (tmp_path / "x.npt").exists()

    def test_injected_crash_leaves_torn_tmp(self, tmp_path):
        """Fault injection models a kill, not an error: the torn temp
        stays on disk (the crash matrix inspects it) and the final path
        is never touched."""
        from repro.storage.faults import CrashAtWrite, InjectedCrash

        store = ObjectStore(
            str(tmp_path), faults=CrashAtWrite(0, torn=True), durable=True
        )
        with pytest.raises(InjectedCrash):
            store.put_bytes("x.npt", b"datadata")
        (leftover,) = tmp_path.rglob("*.tmp")
        assert leftover.read_bytes() == b"data"
        assert not (tmp_path / "x.npt").exists()
