"""Chaos matrix for the elastic failure-recovery supervisor.

The correctness proof of :mod:`repro.dist.supervisor`: a sweep over
*failure point* (mid-step, mid-save pre-/post-commit, mid-convert) ×
*surviving topology* (TP / PP / DP / ZeRO shrink paths, plus an
infeasible one the supervisor must reject) × *seed*.  Every feasible
cell must

- reach the horizon and resume with loss-curve continuity against an
  uninterrupted golden run of the same job (paper band, 0.02);
- leave every committed manifest and digest intact
  (``verify_directory`` plus ``lost_committed_tags == []`` — no
  committed checkpoint is ever lost);
- report sane accounting: goodput in (0, 1], non-negative stage
  timings, MTTR over completed recoveries.

The whole module runs under ``REPRO_SANITIZE=1`` (the CI chaos job
sets it), so every recovery also passes the buffer-isolation
sanitizer.
"""

import json

import pytest

from repro.analysis.continuity import check_loss_continuity
from repro.ckpt.loader import latest_committed_tag
from repro.core.inspect import verify_directory
from repro.dist.supervisor import Supervisor, TopologyRejectedError, supervise
from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.storage.faults import (
    PHASE_SAVE_PRE_COMMIT,
    KillEvent,
    KillSchedule,
)

MODEL = get_config("gpt3-mini")

# world-4 source for the dense phase sweep; world-8 for the PP path
SOURCE4 = ParallelConfig(tp=2, pp=1, dp=2, zero_stage=1)
SOURCE8 = ParallelConfig(tp=2, pp=2, dp=2, zero_stage=1)
SOURCE_Z2 = ParallelConfig(tp=2, pp=1, dp=2, zero_stage=2)

HORIZON = 10
SAVE_EVERY = 4
SEEDS = (7, 11)


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """Lazily-computed golden loss curves, keyed by (source, seed).

    A golden run is the same supervised job with an empty kill
    schedule; its curve is the continuity reference for every chaos
    cell sharing the source topology and seed.
    """
    root = tmp_path_factory.mktemp("goldens")
    cache = {}

    def get(source: ParallelConfig, seed: int):
        key = (source.describe(), seed)
        if key not in cache:
            sup = Supervisor(
                MODEL,
                source,
                str(root / f"g{len(cache)}"),
                horizon=HORIZON,
                save_every=SAVE_EVERY,
                seed=seed,
            )
            cache[key] = sup.run().losses
        return cache[key]

    return get


def run_cell(
    workdir,
    source=SOURCE4,
    specs=(),
    events=(),
    overrides=None,
    seed=7,
    golden_curve=None,
):
    """One chaos cell: a supervised run under the given kill schedule."""
    schedule = (
        KillSchedule.from_specs(specs) if specs else KillSchedule(events)
    )
    sup = Supervisor(
        MODEL,
        source,
        str(workdir),
        horizon=HORIZON,
        save_every=SAVE_EVERY,
        schedule=schedule,
        target_overrides=overrides,
        seed=seed,
    )
    return sup.run(golden=golden_curve)


def assert_cell_invariants(report, workdir):
    """The invariants every feasible chaos cell must satisfy."""
    assert report.useful_steps == HORIZON
    assert 0.0 < report.goodput <= 1.0
    assert report.wall_steps >= HORIZON
    # zero lost committed checkpoints, ever
    assert report.lost_committed_tags == []
    assert report.committed_tags, "run never committed a checkpoint"
    # manifest/digest integrity of the whole job directory
    assert verify_directory(str(workdir)).ok
    assert all(e.integrity_ok for e in report.events)
    for e in report.events:
        t = e.timings
        assert t.detection_s > 0 and t.replan_s > 0
        assert t.convert_s >= 0 and t.resume_s >= 0
        # every resume point is a committed tag ("" = cold restart:
        # the failure struck before the first commit ever happened)
        assert e.resume_tag == "" or e.resume_tag in report.committed_tags
    completed = [e for e in report.events if e.completed]
    if completed:
        assert report.mttr_s > 0
    if report.continuity is not None:
        assert report.continuity.ok, report.continuity


class TestFailurePointMatrix:
    """Failure point × seed on the world-4 source, planner-chosen target."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "specs,phase,resume_tag,lost",
        [
            # mid-step: rank 3 dies at step 6 -> roll back to step 4
            (["6:step:3"], "step", "global_step4", 2),
            # pre-commit save kill: the step-8 tag never commits
            (["8:save-pre:1"], PHASE_SAVE_PRE_COMMIT, "global_step4", 4),
            # post-commit save kill: the step-8 tag IS committed even
            # though the `latest` pointer still names its predecessor
            (["8:save-post:1"], "save_post_commit", "global_step8", 0),
        ],
        ids=["mid-step", "save-pre-commit", "save-post-commit"],
    )
    def test_single_failure(
        self, tmp_path, golden, specs, phase, resume_tag, lost, seed
    ):
        report = run_cell(
            tmp_path,
            specs=specs,
            seed=seed,
            golden_curve=golden(SOURCE4, seed),
        )
        assert_cell_invariants(report, tmp_path)
        assert report.interruptions == 1
        assert len(report.events) == 1
        (event,) = report.events
        assert event.trigger_phase == phase
        assert event.resume_tag == resume_tag
        assert event.lost_steps == lost
        assert event.completed
        # a post-commit kill loses no work at all
        if lost == 0:
            assert report.goodput == 1.0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mid_convert_kill_resumes_conversion(self, tmp_path, golden, seed):
        """The recovery conversion itself dies; the retry (at further
        reduced capacity) reuses every atom the dead attempt committed."""
        report = run_cell(
            tmp_path,
            specs=["6:step:3", "6:convert:2:5"],
            seed=seed,
            golden_curve=golden(SOURCE4, seed),
        )
        assert_cell_invariants(report, tmp_path)
        assert report.interruptions == 2
        assert len(report.events) == 2
        first, second = report.events
        assert not first.completed and first.atoms_reused == 0
        assert second.completed
        assert second.trigger_phase == "convert"
        assert second.atoms_reused > 0, "retry rewrote atoms it had"
        assert second.resume_tag == first.resume_tag == "global_step4"
        # two ranks gone from a world of four
        assert second.capacity_after == 2

    def test_torn_pre_commit_save_never_loads(self, tmp_path, golden):
        """A *torn* manifest write (half the bytes hit the tmp file)
        must behave exactly like a clean pre-commit kill: the torn tag
        is skipped and the previous committed tag is the resume point."""
        event = KillEvent(
            step=8, phase=PHASE_SAVE_PRE_COMMIT, ranks=(1,), torn=True
        )
        report = run_cell(
            tmp_path,
            events=[event],
            golden_curve=golden(SOURCE4, 7),
        )
        assert_cell_invariants(report, tmp_path)
        assert report.events[0].resume_tag == "global_step4"


class TestSurvivingTopologyMatrix:
    """Forced shrink paths across TP/PP/DP/ZeRO, all linter-validated."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "source,specs,override",
        [
            (SOURCE4, ["6:step:3"], ParallelConfig(tp=1, pp=1, dp=2, zero_stage=1)),
            (SOURCE4, ["6:step:3"], ParallelConfig(tp=2, pp=1, dp=1, zero_stage=1)),
            (SOURCE8, ["6:step:5"], ParallelConfig(tp=2, pp=1, dp=2, zero_stage=1)),
            # ZeRO reshard: stage 2 source resumes as stage 1
            (SOURCE_Z2, ["6:step:3"], ParallelConfig(tp=2, pp=1, dp=1, zero_stage=1)),
        ],
        ids=["tp-shrink", "dp-shrink", "pp-shrink", "zero-shrink"],
    )
    def test_forced_shrink_path(
        self, tmp_path, golden, source, specs, override, seed
    ):
        report = run_cell(
            tmp_path,
            source=source,
            specs=specs,
            overrides=[override],
            seed=seed,
            golden_curve=golden(source, seed),
        )
        assert_cell_invariants(report, tmp_path)
        assert report.final_config == override.describe()
        assert report.events[-1].target_config == override.describe()
        assert report.events[-1].source_config == source.describe()

    def test_planner_picks_feasible_topology_unforced(self, tmp_path, golden):
        """With no override the ElasticResumeManager chooses: 3
        survivors of tp2.dp2 (batch 8) can only run as tp1.pp1.dp2."""
        report = run_cell(
            tmp_path, specs=["6:step:3"], golden_curve=golden(SOURCE4, 7)
        )
        assert_cell_invariants(report, tmp_path)
        event = report.events[0]
        assert event.capacity_after == 3
        target = event.target_config
        assert target == ParallelConfig(tp=1, pp=1, dp=2, zero_stage=1).describe()
        assert "dp" in event.plan_reason or "resized" in event.plan_reason

    def test_infeasible_topology_rejected_not_crashed(self, tmp_path):
        """tp=3 cannot divide gpt3-mini's heads/hidden: the pre-flight
        linter must reject it with a UCP diagnostic before any tensor
        is read — and the job directory must stay fully intact."""
        bad = ParallelConfig(tp=3, pp=1, dp=1, zero_stage=1)
        with pytest.raises(TopologyRejectedError) as err:
            run_cell(tmp_path, specs=["6:step:3"], overrides=[bad])
        assert err.value.target == bad
        rules = {d.rule_id for d in err.value.report.errors}
        assert "UCP007" in rules
        assert "UCP007" in str(err.value)
        # the rejection touched nothing: the last committed checkpoint
        # is still there and the directory verifies clean
        assert latest_committed_tag(str(tmp_path)) == "global_step4"
        assert verify_directory(str(tmp_path)).ok


class TestRandomizedSchedules:
    """Seeded random chaos: no expected values, only the invariants."""

    @pytest.mark.parametrize("chaos_seed", [3, 17])
    def test_random_schedule_holds_invariants(
        self, tmp_path, golden, chaos_seed
    ):
        schedule = KillSchedule.random(
            seed=chaos_seed,
            world_size=SOURCE4.world_size,
            horizon=HORIZON,
            save_every=SAVE_EVERY,
            failures=2,
        )
        assert len(schedule) == 2
        sup = Supervisor(
            MODEL,
            SOURCE4,
            str(tmp_path),
            horizon=HORIZON,
            save_every=SAVE_EVERY,
            schedule=schedule,
        )
        report = sup.run(golden=golden(SOURCE4, 7))
        assert_cell_invariants(report, tmp_path)
        assert report.interruptions >= 1

    def test_random_schedule_is_seed_deterministic(self):
        a = KillSchedule.random(seed=5, world_size=4, horizon=12, save_every=4)
        b = KillSchedule.random(seed=5, world_size=4, horizon=12, save_every=4)
        assert a.events == b.events
        c = KillSchedule.random(seed=6, world_size=4, horizon=12, save_every=4)
        assert a.events != c.events


class TestReportDeterminism:
    def test_report_json_is_byte_stable(self, tmp_path, golden):
        """Same schedule + seed -> byte-identical RecoveryReport JSON
        (the CI chaos artifact is diffable across runs)."""
        curve = golden(SOURCE4, 7)
        r1 = run_cell(
            tmp_path / "a",
            specs=["6:step:3", "6:convert:2:5"],
            golden_curve=curve,
        )
        r2 = run_cell(
            tmp_path / "b",
            specs=["6:step:3", "6:convert:2:5"],
            golden_curve=curve,
        )
        assert r1.to_json() == r2.to_json()
        payload = json.loads(r1.to_json())
        assert payload["recoveries"] == 1
        assert payload["events"][1]["timings"]["total_s"] > 0

    def test_supervise_convenience_runs_golden_first(self, tmp_path):
        report = supervise(
            MODEL,
            SOURCE4,
            str(tmp_path),
            horizon=HORIZON,
            save_every=SAVE_EVERY,
            schedule=KillSchedule.from_specs(["6:step:3"]),
        )
        assert report.continuity is not None
        assert report.continuity.ok
        assert_cell_invariants(report, tmp_path / "run")
