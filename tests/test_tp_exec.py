"""Tests for the tensor-parallel execution harness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.collectives import CommTracker
from repro.dist.process_group import ProcessGroup
from repro.nn import functional as F
from repro.parallel.tp_exec import (
    column_parallel_linear,
    row_parallel_linear,
    tensor_parallel_mlp,
)


def make_group(size, tracker=None):
    return ProcessGroup("tp", list(range(size)), tracker=tracker)


class TestColumnParallel:
    @pytest.mark.parametrize("tp", [1, 2, 4])
    def test_matches_unsharded(self, rng, tp):
        x = rng.standard_normal((3, 8)).astype(np.float32)
        w = rng.standard_normal((12, 8)).astype(np.float32)
        b = rng.standard_normal(12).astype(np.float32)
        expected = x @ w.T + b
        got = column_parallel_linear(x, w, make_group(tp), bias=b)
        assert np.allclose(got, expected, atol=1e-5)

    def test_gathers_in_rank_order(self, rng):
        x = rng.standard_normal((2, 4)).astype(np.float32)
        w = np.zeros((8, 4), dtype=np.float32)
        w[0, :] = 1.0  # only rank 0's first output row is nonzero
        out = column_parallel_linear(x, w, make_group(2))
        assert np.allclose(out[:, 0], x.sum(axis=1), atol=1e-5)
        assert np.allclose(out[:, 4:], 0.0)


class TestRowParallel:
    @pytest.mark.parametrize("tp", [1, 2, 4])
    def test_matches_unsharded(self, rng, tp):
        x = rng.standard_normal((3, 8)).astype(np.float32)
        w = rng.standard_normal((6, 8)).astype(np.float32)
        b = rng.standard_normal(6).astype(np.float32)
        expected = x @ w.T + b
        got = row_parallel_linear(x, w, make_group(tp), bias=b)
        assert np.allclose(got, expected, atol=1e-4)

    def test_bias_added_exactly_once(self, rng):
        """With zero weights the output must equal the bias — added
        after the reduction, not once per rank."""
        x = rng.standard_normal((2, 8)).astype(np.float32)
        w = np.zeros((4, 8), dtype=np.float32)
        b = np.ones(4, dtype=np.float32)
        out = row_parallel_linear(x, w, make_group(4), bias=b)
        assert np.allclose(out, 1.0)


class TestTensorParallelMLP:
    @pytest.mark.parametrize("tp", [1, 2, 4])
    @pytest.mark.parametrize("activation", [F.gelu, F.silu])
    def test_matches_unsharded(self, rng, tp, activation):
        x = rng.standard_normal((3, 8)).astype(np.float32)
        up = rng.standard_normal((16, 8)).astype(np.float32) * 0.5
        down = rng.standard_normal((8, 16)).astype(np.float32) * 0.5
        expected = activation(x @ up.T) @ down.T
        got = tensor_parallel_mlp(x, up, down, make_group(tp), activation=activation)
        assert np.allclose(got, expected, atol=1e-4)

    def test_single_allreduce_per_mlp(self, rng):
        """The Megatron property: column->act->row needs exactly one
        collective."""
        tracker = CommTracker()
        group = make_group(4, tracker)
        x = rng.standard_normal((2, 8)).astype(np.float32)
        up = rng.standard_normal((16, 8)).astype(np.float32)
        down = rng.standard_normal((8, 16)).astype(np.float32)
        tensor_parallel_mlp(x, up, down, group)
        assert tracker.count() == 1
        assert tracker.count("all_reduce") == 1

    def test_with_biases(self, rng):
        x = rng.standard_normal((2, 8)).astype(np.float32)
        up = rng.standard_normal((16, 8)).astype(np.float32) * 0.5
        up_b = rng.standard_normal(16).astype(np.float32)
        down = rng.standard_normal((8, 16)).astype(np.float32) * 0.5
        down_b = rng.standard_normal(8).astype(np.float32)
        expected = F.gelu(x @ up.T + up_b) @ down.T + down_b
        got = tensor_parallel_mlp(
            x, up, down, make_group(2), up_bias=up_b, down_bias=down_b
        )
        assert np.allclose(got, expected, atol=1e-4)


@given(
    tp=st.sampled_from([1, 2, 4]),
    rows=st.integers(1, 4),
    in_per_rank=st.integers(1, 4),
    out_per_rank=st.integers(1, 4),
)
@settings(max_examples=40, deadline=None)
def test_parallel_linear_equivalence_property(tp, rows, in_per_rank, out_per_rank):
    """Property: for any geometry, sharded execution matches unsharded
    within fp32 reduction tolerance."""
    gen = np.random.default_rng(tp * 100 + rows)
    in_f, out_f = in_per_rank * tp * 2, out_per_rank * tp
    x = gen.standard_normal((rows, in_f)).astype(np.float32)
    w = gen.standard_normal((out_f, in_f)).astype(np.float32)
    group = make_group(tp)
    expected = x @ w.T
    assert np.allclose(column_parallel_linear(x, w, group), expected, atol=1e-4)
    assert np.allclose(row_parallel_linear(x, w, group), expected, atol=1e-4)
