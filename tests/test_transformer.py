"""Tests for the full TransformerLM across all four model families."""

import numpy as np
import pytest

from repro.models import available_models, build_model, get_config
from repro.models.builder import build_transformer
from tests.helpers import assert_grad_close, numerical_param_grad

FAMILIES = ["gpt3-mini", "llama-mini", "bloom-mini", "moe-mini"]


def tiny_batch(model, rng, batch=2, seq=6):
    ids = rng.integers(0, model.vocab_size, size=(batch, seq + 1))
    return ids[:, :-1], ids[:, 1:]


class TestForward:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_logits_shape(self, name, rng):
        model = build_model(name, seed=1)
        inputs, _ = tiny_batch(model, rng)
        logits = model(inputs)
        assert logits.shape == (2, 6, model.vocab_size)

    @pytest.mark.parametrize("name", FAMILIES)
    def test_initial_loss_near_log_vocab(self, name, rng):
        model = build_model(name, seed=1)
        inputs, targets = tiny_batch(model, rng, batch=4, seq=12)
        loss = model.loss(inputs, targets)
        assert abs(loss - np.log(model.vocab_size)) < 0.5

    def test_forward_is_deterministic(self, rng):
        a = build_model("gpt3-mini", seed=1)
        b = build_model("gpt3-mini", seed=1)
        inputs, _ = tiny_batch(a, rng)
        assert np.array_equal(a(inputs), b(inputs))

    def test_different_seeds_differ(self, rng):
        a = build_model("gpt3-mini", seed=1)
        b = build_model("gpt3-mini", seed=2)
        inputs, _ = tiny_batch(a, rng)
        assert not np.array_equal(a(inputs), b(inputs))


class TestBackward:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_all_parameters_receive_gradients(self, name, rng):
        model = build_model(name, seed=1)
        inputs, targets = tiny_batch(model, rng, batch=4, seq=10)
        model.loss_and_backward(inputs, targets)
        for pname, param in model.named_parameters():
            assert param.grad is not None, pname
            # MoE expert slices may legitimately be all-zero; others not
            if "ffn.gate_weight" in pname or "ffn.up_weight" in pname or "ffn.down_weight" in pname:
                continue
            assert np.abs(param.grad).sum() > 0, pname

    def test_embedding_gradient_numerical(self, rng):
        model = build_model("gpt3-mini", seed=1)
        inputs, targets = tiny_batch(model, rng, batch=1, seq=4)
        model.loss_and_backward(inputs, targets)
        emb = model.embedding.weight
        token = int(inputs[0, 0])
        indices = [token * model.embedding.hidden]  # first hidden dim of a used token
        numeric = numerical_param_grad(
            lambda: model.loss(inputs, targets), emb.data, indices, eps=5e-3
        )
        assert_grad_close(emb.grad.reshape(-1)[indices], numeric, rtol=1.5e-1)

    def test_tied_head_accumulates_both_gradients(self, rng):
        """A tied LM head adds head and embedding grads into one tensor."""
        model = build_model("gpt3-mini", seed=1)  # tied
        assert model.tied_head
        inputs, targets = tiny_batch(model, rng)
        model.loss_and_backward(inputs, targets)
        # every logical vocab row participates in the head matmul
        row_norms = np.abs(model.embedding.weight.grad[: model.vocab_size]).sum(axis=1)
        assert (row_norms > 0).all()

    def test_untied_head_has_separate_gradient(self, rng):
        model = build_model("llama-mini", seed=1)
        assert not model.tied_head
        inputs, targets = tiny_batch(model, rng)
        model.loss_and_backward(inputs, targets)
        assert model.lm_head.grad is not None
        assert model.embedding.weight.grad is not None

    def test_padded_vocab_rows_stay_zero_grad(self, rng):
        model = build_model("gpt3-mini", seed=1)
        inputs, targets = tiny_batch(model, rng)
        model.loss_and_backward(inputs, targets)
        pad_rows = model.embedding.weight.grad[model.vocab_size:]
        assert np.array_equal(pad_rows, np.zeros_like(pad_rows))


class TestTraining:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_sgd_reduces_loss(self, name, rng):
        """A few plain-SGD steps on a fixed batch must reduce the loss."""
        model = build_model(name, seed=1)
        inputs, targets = tiny_batch(model, rng, batch=4, seq=10)
        first = model.loss_and_backward(inputs, targets)
        for _ in range(5):
            for param in model.parameters():
                if param.grad is not None:
                    param.data -= 0.1 * param.grad
            model.zero_grad()
            last = model.loss_and_backward(inputs, targets)
        assert last < first


class TestRegistry:
    def test_paper_scale_models_registered(self):
        names = available_models()
        for expected in ["gpt3-350m", "llama-7b", "bloom-176b", "mixtral-moe-42b"]:
            assert expected in names

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            get_config("gpt5")

    def test_paper_parameter_counts_roughly_match(self):
        """Table 4 sanity: config geometry implies the advertised sizes."""
        import repro.parallel.tp as tp

        def count(name):
            cfg = get_config(name)
            specs = tp.build_shard_specs(cfg)
            total = 0
            for spec in specs.values():
                n = 1
                for d in spec.unpadded_shape:
                    n *= d
                total += n
            return total

        assert 3.0e8 < count("gpt3-350m") < 4.5e8
        assert 6.0e9 < count("llama-7b") < 8.0e9
        assert 1.5e11 < count("bloom-176b") < 2.1e11
        assert 3.5e10 < count("mixtral-moe-42b") < 5.0e10

    def test_mini_models_build(self):
        for name in FAMILIES:
            model = build_model(name, seed=0)
            assert model.num_parameters() > 0

    def test_builder_rejects_unknown_norm(self):
        cfg = get_config("gpt3-mini")
        import dataclasses
        bad = dataclasses.replace(cfg, norm="batchnorm")
        with pytest.raises(ValueError, match="unknown norm"):
            build_transformer(bad)


class TestGeneration:
    def test_greedy_is_deterministic(self, rng):
        model = build_model("gpt3-mini", seed=1)
        prompt = rng.integers(0, model.vocab_size, size=6)
        a = model.generate(prompt, max_new_tokens=5)
        b = model.generate(prompt, max_new_tokens=5)
        assert np.array_equal(a, b)
        assert a.shape == (11,)
        assert np.array_equal(a[:6], prompt)

    def test_sampled_generation_is_seeded(self, rng):
        model = build_model("gpt3-mini", seed=1)
        prompt = rng.integers(0, model.vocab_size, size=4)
        a = model.generate(prompt, 6, temperature=1.0, seed=42)
        b = model.generate(prompt, 6, temperature=1.0, seed=42)
        c = model.generate(prompt, 6, temperature=1.0, seed=43)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_batched_generation(self, rng):
        model = build_model("gpt3-mini", seed=1)
        prompts = rng.integers(0, model.vocab_size, size=(3, 4))
        out = model.generate(prompts, max_new_tokens=3)
        assert out.shape == (3, 7)

    def test_tokens_in_vocab_range(self, rng):
        model = build_model("gpt3-mini", seed=1)
        prompt = rng.integers(0, model.vocab_size, size=4)
        out = model.generate(prompt, 8, temperature=1.5, seed=0)
        assert out.min() >= 0 and out.max() < model.vocab_size

    def test_bad_args_raise(self, rng):
        model = build_model("gpt3-mini", seed=1)
        prompt = rng.integers(0, model.vocab_size, size=4)
        with pytest.raises(ValueError, match="max_new_tokens"):
            model.generate(prompt, 0)
        with pytest.raises(ValueError, match="temperature"):
            model.generate(prompt, 2, temperature=-1.0)

    def test_resharded_model_generates_identically(self, rng, tmp_path):
        """Behavioural equivalence: a UCP-resharded model produces the
        exact same greedy continuation as its source."""
        from repro.core.resume import resume_training
        from repro.dist.topology import ParallelConfig
        from tests.helpers import make_engine

        src = make_engine(parallel=ParallelConfig(tp=2, pp=2, dp=2), seed=7)
        src.train(3)
        src.save_checkpoint(str(tmp_path))
        dst = resume_training(str(tmp_path), ParallelConfig())
        prompt = rng.integers(0, src.model.vocab_size, size=8)
        assert np.array_equal(
            src.model.generate(prompt, 10), dst.model.generate(prompt, 10)
        )
