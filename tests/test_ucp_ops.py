"""Tests for the five UCP operations (paper Table 2 / Algorithm 1)."""

import numpy as np
import pytest

from repro.core.errors import PatternMatchError, UCPFormatError
from repro.core.ops import (
    ParamFragment,
    add_padding,
    extract,
    gen_ucp_metadata,
    strip_padding,
    union,
)
from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.parallel.sharding import EvenFragment, VocabFragment
from repro.parallel.tp import (
    PATTERN_FRAGMENT,
    PATTERN_REPLICATED,
    PATTERN_TO_AVERAGE,
    PATTERN_UNIQUE,
    ShardSpec,
)

from tests.helpers import make_engine


def frag(name, data, shard_start, shard_shape, kind="fp32", pp=0, sp=0, tp=0, dp=0):
    data = np.asarray(data, dtype=np.float32).reshape(-1)
    return ParamFragment(
        name=name, kind=kind, data=data,
        shard_start=shard_start, shard_end=shard_start + data.size,
        pp_stage=pp, sp_rank=sp, tp_rank=tp, dp_rank=dp,
        shard_shape=shard_shape,
    )


class TestExtract:
    def _checkpoint_payload(self, tmp_path, parallel):
        engine = make_engine(parallel=parallel)
        engine.train(1)
        info = engine.save_checkpoint(str(tmp_path))
        from repro.storage.store import ObjectStore
        store = ObjectStore(str(tmp_path))
        optim = [f for f in info.files if "optim_states" in f]
        return engine, [store.load(f) for f in optim]

    def test_fragments_cover_every_parameter(self, tmp_path):
        engine, payloads = self._checkpoint_payload(tmp_path, ParallelConfig(dp=2))
        fragments = [f for p in payloads for f in extract(p)]
        names = {f.name for f in fragments}
        assert names == set(engine.layout.shard_specs)

    def test_fragment_totals_match_shard_sizes(self, tmp_path):
        engine, payloads = self._checkpoint_payload(tmp_path, ParallelConfig(dp=4))
        fragments = [f for p in payloads for f in extract(p) if f.kind == "fp32"]
        by_name = {}
        for f in fragments:
            by_name.setdefault(f.name, []).append(f)
        for name, parts in by_name.items():
            entry = engine.layout.rank_layout(0, 0, 0).entry(name)
            assert sum(p.data.size for p in parts) == entry.numel

    def test_extract_records_grid_coordinates(self, tmp_path):
        _, payloads = self._checkpoint_payload(tmp_path, ParallelConfig(tp=2, pp=2, dp=1))
        tp_ranks = {f.tp_rank for p in payloads for f in extract(p)}
        pp_stages = {f.pp_stage for p in payloads for f in extract(p)}
        assert tp_ranks == {0, 1}
        assert pp_stages == {0, 1}

    def test_extracted_values_match_source_state(self, tmp_path):
        engine, payloads = self._checkpoint_payload(tmp_path, ParallelConfig())
        fragments = [f for p in payloads for f in extract(p)]
        masters = engine.zero.consolidated_tensors("fp32")
        target = next(
            f for f in fragments
            if f.name == "final_norm.weight" and f.kind == "fp32"
        )
        full = masters["final_norm.weight"].reshape(-1)
        assert np.array_equal(
            target.data, full[target.shard_start : target.shard_end]
        )

    def test_unknown_kind_raises(self, tmp_path):
        _, payloads = self._checkpoint_payload(tmp_path, ParallelConfig())
        with pytest.raises(KeyError, match="state kind"):
            extract(payloads[0], kinds=["gradients"])

    def test_corrupt_partition_size_raises(self, tmp_path):
        _, payloads = self._checkpoint_payload(tmp_path, ParallelConfig())
        payloads[0]["fp32_flat_partition"] = payloads[0]["fp32_flat_partition"][:-1]
        with pytest.raises(UCPFormatError, match="partition array"):
            extract(payloads[0])


class TestUnion:
    def test_unique(self):
        spec = ShardSpec(PATTERN_UNIQUE, (4,), (4,))
        out = union([frag("p", [1, 2, 3, 4], 0, (4,))], spec, tp_degree=1)
        assert np.array_equal(out, [1, 2, 3, 4])

    def test_unique_with_multiple_owners_raises(self):
        spec = ShardSpec(PATTERN_UNIQUE, (2,), (2,))
        frags = [frag("p", [1, 2], 0, (2,), tp=0), frag("p", [1, 2], 0, (2,), tp=1)]
        with pytest.raises(PatternMatchError, match="unique"):
            union(frags, spec, tp_degree=2)

    def test_replicated_takes_first_verified_copy(self):
        spec = ShardSpec(PATTERN_REPLICATED, (2,), (2,))
        frags = [frag("p", [5, 6], 0, (2,), tp=0), frag("p", [5, 6], 0, (2,), tp=1)]
        assert np.array_equal(union(frags, spec, tp_degree=2), [5, 6])

    def test_replicated_divergence_detected(self):
        spec = ShardSpec(PATTERN_REPLICATED, (2,), (2,))
        frags = [frag("p", [5, 6], 0, (2,), tp=0), frag("p", [5, 7], 0, (2,), tp=1)]
        with pytest.raises(PatternMatchError, match="differ"):
            union(frags, spec, tp_degree=2)

    def test_replicated_divergence_allowed_when_unverified(self):
        spec = ShardSpec(PATTERN_REPLICATED, (2,), (2,))
        frags = [frag("p", [5, 6], 0, (2,), tp=0), frag("p", [5, 7], 0, (2,), tp=1)]
        out = union(frags, spec, tp_degree=2, verify_replicas=False)
        assert np.array_equal(out, [5, 6])

    def test_params_to_average(self):
        spec = ShardSpec(PATTERN_TO_AVERAGE, (2,), (2,))
        frags = [frag("p", [1.0, 2.0], 0, (2,), sp=0), frag("p", [3.0, 4.0], 0, (2,), sp=1)]
        assert np.allclose(union(frags, spec, tp_degree=1), [2.0, 3.0])

    def test_fragment_joins_tp_shards(self):
        spec = ShardSpec(PATTERN_FRAGMENT, (4, 2), (4, 2), EvenFragment(dim=0))
        frags = [
            frag("p", [[1, 2], [3, 4]], 0, (2, 2), tp=0),
            frag("p", [[5, 6], [7, 8]], 0, (2, 2), tp=1),
        ]
        out = union(frags, spec, tp_degree=2)
        assert np.array_equal(out, [[1, 2], [3, 4], [5, 6], [7, 8]])

    def test_fragment_reassembles_dp_split_shards(self):
        """A ZeRO partition boundary cutting a parameter mid-tensor."""
        spec = ShardSpec(PATTERN_FRAGMENT, (4, 2), (4, 2), EvenFragment(dim=0))
        frags = [
            frag("p", [1, 2, 3], 0, (2, 2), tp=0, dp=0),
            frag("p", [4], 3, (2, 2), tp=0, dp=1),
            frag("p", [5, 6, 7, 8], 0, (2, 2), tp=1, dp=0),
        ]
        out = union(frags, spec, tp_degree=2)
        assert np.array_equal(out, [[1, 2], [3, 4], [5, 6], [7, 8]])

    def test_gap_in_shard_coverage_raises(self):
        spec = ShardSpec(PATTERN_UNIQUE, (4,), (4,))
        frags = [frag("p", [1, 2], 0, (4,)), frag("p", [4], 3, (4,))]
        with pytest.raises(UCPFormatError, match="gap"):
            union(frags, spec, tp_degree=1)

    def test_incomplete_shard_raises(self):
        spec = ShardSpec(PATTERN_UNIQUE, (4,), (4,))
        with pytest.raises(UCPFormatError, match="incomplete"):
            union([frag("p", [1, 2], 0, (4,))], spec, tp_degree=1)

    def test_missing_tp_shard_raises(self):
        spec = ShardSpec(PATTERN_FRAGMENT, (4,), (4,), EvenFragment(dim=0))
        with pytest.raises(PatternMatchError, match="expected TP shards"):
            union([frag("p", [1, 2], 0, (2,), tp=0)], spec, tp_degree=2)

    def test_mixed_parameters_raise(self):
        spec = ShardSpec(PATTERN_UNIQUE, (2,), (2,))
        with pytest.raises(UCPFormatError, match="mixed"):
            union([frag("a", [1, 2], 0, (2,)), frag("b", [1, 2], 0, (2,))], spec, 1)

    def test_empty_raises(self):
        spec = ShardSpec(PATTERN_UNIQUE, (2,), (2,))
        with pytest.raises(UCPFormatError, match="zero fragments"):
            union([], spec, 1)


class TestPadding:
    def _spec(self):
        return ShardSpec(
            PATTERN_FRAGMENT, (16, 3), (11, 3), VocabFragment(logical_rows=11)
        )

    def test_strip_removes_pad_rows(self, rng):
        spec = self._spec()
        full = rng.standard_normal((16, 3)).astype(np.float32)
        stripped = strip_padding(full, spec)
        assert stripped.shape == (11, 3)
        assert np.array_equal(stripped, full[:11])

    def test_add_restores_zero_rows(self, rng):
        spec = self._spec()
        unpadded = rng.standard_normal((11, 3)).astype(np.float32)
        padded = add_padding(unpadded, spec)
        assert padded.shape == (16, 3)
        assert np.array_equal(padded[:11], unpadded)
        assert np.array_equal(padded[11:], np.zeros((5, 3)))

    def test_strip_add_round_trip(self, rng):
        spec = self._spec()
        unpadded = rng.standard_normal((11, 3)).astype(np.float32)
        assert np.array_equal(strip_padding(add_padding(unpadded, spec), spec), unpadded)

    def test_no_padding_is_identity(self, rng):
        spec = ShardSpec(PATTERN_REPLICATED, (4,), (4,))
        x = rng.standard_normal(4).astype(np.float32)
        assert strip_padding(x, spec) is x
        assert add_padding(x, spec) is x

    def test_wrong_shape_raises(self, rng):
        spec = self._spec()
        with pytest.raises(UCPFormatError):
            strip_padding(np.zeros((11, 3), dtype=np.float32), spec)
        with pytest.raises(UCPFormatError):
            add_padding(np.zeros((16, 3), dtype=np.float32), spec)


class TestGenUcpMetadata:
    def test_plan_covers_all_partitions(self):
        plan = gen_ucp_metadata(get_config("gpt3-mini"), ParallelConfig(tp=2, pp=2, dp=2))
        assert plan.total_partitions() == 4 * 2

    def test_partition_assignment_fills_payload(self):
        target = ParallelConfig(dp=4)
        plan = gen_ucp_metadata(get_config("gpt3-mini"), target)
        rank_layout = plan.layout.rank_layout(0, 0, 0)
        assigned = 0
        for d in range(4):
            for piece in plan.partition_assignment(0, 0, 0, d):
                assigned += piece.local_end - piece.local_start
        assert assigned == rank_layout.payload_numel

    def test_plan_matches_engine_layout(self):
        """GenUcpMetadata and the engine must agree on the layout —
        the single-source-of-truth property."""
        target = ParallelConfig(tp=2, pp=2, dp=2)
        plan = gen_ucp_metadata(get_config("gpt3-mini"), target)
        engine = make_engine(parallel=target)
        for coord in engine.layout.mp_coords():
            ours = engine.layout.rank_layout(*coord)
            theirs = plan.layout.rank_layout(*coord)
            assert [e.name for e in ours.entries] == [e.name for e in theirs.entries]
            assert ours.flat_numel == theirs.flat_numel
