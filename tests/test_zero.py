"""Tests for the ZeRO partitioned optimizer."""

import numpy as np
import pytest

from repro.dist.topology import ParallelConfig
from repro.models import build_model, get_config
from repro.optim.adam import Adam, AdamParamState
from repro.parallel.layout import ModelParallelLayout
from repro.parallel.zero import ZeroOptimizer


def make_zero(model_name="gpt3-mini", parallel=None, seed=3):
    cfg = get_config(model_name)
    parallel = parallel if parallel is not None else ParallelConfig()
    model = build_model(model_name, seed=seed)
    layout = ModelParallelLayout(cfg, parallel)
    zero = ZeroOptimizer(layout, Adam())
    zero.initialize_from(model.state_dict())
    return model, zero


class TestInitialization:
    def test_consolidated_round_trip(self):
        model, zero = make_zero(parallel=ParallelConfig(tp=2, pp=2, dp=2))
        state = model.state_dict()
        recovered = zero.consolidated_tensors("fp32")
        for name, original in state.items():
            assert np.array_equal(recovered[name], original), name

    def test_moments_start_at_zero(self):
        _, zero = make_zero(parallel=ParallelConfig(dp=2))
        for tensors in (zero.consolidated_tensors("exp_avg"),
                        zero.consolidated_tensors("exp_avg_sq")):
            assert all(np.array_equal(v, np.zeros_like(v)) for v in tensors.values())

    def test_partition_sizes_equal(self):
        _, zero = make_zero(parallel=ParallelConfig(dp=4))
        parts = zero.partitions[(0, 0, 0)]
        assert len({p.numel for p in parts}) == 1

    def test_unknown_kind_raises(self):
        _, zero = make_zero()
        with pytest.raises(KeyError, match="state kind"):
            zero.full_flat((0, 0, 0), "exp_avg_cubed")


class TestUpdateEquivalence:
    def _grads_for(self, model, scale=0.01):
        gen = np.random.default_rng(5)
        return {
            name: (gen.standard_normal(p.shape) * scale).astype(np.float32)
            for name, p in model.named_parameters()
        }

    @pytest.mark.parametrize(
        "parallel",
        [
            ParallelConfig(),
            ParallelConfig(dp=2),
            ParallelConfig(dp=4, zero_stage=2),
            ParallelConfig(tp=2, dp=2),
            ParallelConfig(tp=2, pp=2, dp=2),
            ParallelConfig(dp=2, zero_stage=3),
            ParallelConfig(sp=2, dp=2),
        ],
    )
    def test_update_matches_unpartitioned_adam(self, parallel):
        """Any sharding of the update must equal plain full-tensor Adam."""
        model, zero = make_zero(parallel=parallel)
        grads = self._grads_for(model)
        zero.apply_grads(grads, lr=1e-3)
        updated = zero.consolidated_tensors("fp32")

        reference_model = build_model("gpt3-mini", seed=3)
        adam = Adam()
        for name, param in reference_model.named_parameters():
            flat = param.data.reshape(-1).copy()
            state = AdamParamState.zeros(flat.size)
            adam.step(flat, grads[name].reshape(-1), state, lr=1e-3)
            assert np.array_equal(
                updated[name], flat.reshape(param.shape)
            ), f"{name} under {parallel.describe()}"

    def test_step_counter_advances(self):
        model, zero = make_zero(parallel=ParallelConfig(dp=2))
        assert zero.global_step == 0
        zero.apply_grads(self._grads_for(model), lr=1e-3)
        assert zero.global_step == 1

    def test_moments_populated_after_step(self):
        model, zero = make_zero(parallel=ParallelConfig(dp=2))
        zero.apply_grads(self._grads_for(model), lr=1e-3)
        exp_avg = zero.consolidated_tensors("exp_avg")
        assert any(np.abs(v).sum() > 0 for v in exp_avg.values())


class TestReplicaConsistency:
    def test_consistent_after_updates(self):
        model, zero = make_zero(parallel=ParallelConfig(tp=2, pp=2, dp=2))
        gen = np.random.default_rng(5)
        grads = {
            name: (gen.standard_normal(p.shape) * 0.01).astype(np.float32)
            for name, p in model.named_parameters()
        }
        zero.apply_grads(grads, lr=1e-3)
        zero.verify_replica_consistency()

    def test_detects_divergence(self):
        _, zero = make_zero(parallel=ParallelConfig(tp=2))
        # corrupt a replicated norm param on one tp rank only
        layout = zero.layout.rank_layout(0, 0, 1)
        entry = layout.entry("final_norm.weight")
        flat_offset = entry.offset
        part = zero.partitions[(0, 0, 1)][0]
        part.fp32[flat_offset] += 1.0
        with pytest.raises(AssertionError, match="diverged"):
            zero.verify_replica_consistency()


class TestShardTensors:
    def test_shard_shapes_match_layout(self):
        _, zero = make_zero(parallel=ParallelConfig(tp=2, pp=2))
        for coord in zero.layout.mp_coords():
            shards = zero.shard_tensors(coord)
            for entry in zero.layout.rank_layout(*coord).entries:
                assert shards[entry.name].shape == entry.shard_shape

    def test_bad_grad_shape_raises(self):
        model, zero = make_zero()
        grads = {name: p.data for name, p in model.named_parameters()}
        grads["final_norm.weight"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            zero.apply_grads(grads, lr=1e-3)
